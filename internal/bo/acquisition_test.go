package bo

import (
	"math"
	"testing"

	"github.com/mar-hbo/hbo/internal/sim"
)

func TestPIProperties(t *testing.T) {
	pi := PI{Xi: 0.01}
	// Certain improvement.
	if s := pi.Score(0, 1e-16, 1); s != 1 {
		t.Fatalf("certain improvement PI = %v, want 1", s)
	}
	// Certain non-improvement.
	if s := pi.Score(2, 1e-16, 1); s != 0 {
		t.Fatalf("certain non-improvement PI = %v, want 0", s)
	}
	// Scores are probabilities.
	for _, mean := range []float64{-2, 0, 1, 3} {
		for _, v := range []float64{0.01, 1, 10} {
			s := pi.Score(mean, v, 1)
			if s < 0 || s > 1 {
				t.Fatalf("PI(%v,%v) = %v out of [0,1]", mean, v, s)
			}
		}
	}
	// PI's known conservatism: at equal mean just above best, EI still
	// assigns meaningful value to high variance, PI only via the tail.
	eiGain := EI{}.Score(1.05, 4, 1) / EI{}.Score(1.05, 0.04, 1)
	piGain := pi.Score(1.05, 4, 1) / math.Max(pi.Score(1.05, 0.04, 1), 1e-300)
	if eiGain <= 1 {
		t.Fatalf("EI should reward extra variance, gain %v", eiGain)
	}
	_ = piGain // PI's gain explodes from ~0; the point is EI stays bounded and smooth
}

func TestLCBProperties(t *testing.T) {
	l := LCB{Beta: 2}
	// Lower mean scores higher.
	if l.Score(0, 1, 0) <= l.Score(1, 1, 0) {
		t.Fatal("LCB should prefer lower posterior mean")
	}
	// More variance scores higher (optimism under uncertainty).
	if l.Score(1, 4, 0) <= l.Score(1, 1, 0) {
		t.Fatal("LCB should prefer higher variance")
	}
	// Beta controls the trade-off.
	timid := LCB{Beta: 0.1}
	if timid.Score(1, 4, 0)-timid.Score(1, 1, 0) >= l.Score(1, 4, 0)-l.Score(1, 1, 0) {
		t.Fatal("larger Beta should weight variance more")
	}
	if name := (LCB{Beta: 2.0}).Name(); name != "LCB(2.0)" {
		t.Fatalf("LCB name = %s", name)
	}
}

func TestOptimizerWorksWithEveryAcquisition(t *testing.T) {
	cost := func(p []float64) float64 {
		dx := p[3] - 0.7
		return (1-p[2])*0.8 + 3*dx*dx
	}
	dom := Domain{N: 3, RMin: 0.3}
	for _, acq := range []Acquisition{EI{}, PI{Xi: 0.01}, LCB{Beta: 2}} {
		cfg := DefaultConfig()
		cfg.Acquisition = acq
		opt, err := NewOptimizer(dom, cfg, sim.NewRNG(3))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			p, err := opt.Next()
			if err != nil {
				t.Fatalf("%s: %v", acq.Name(), err)
			}
			if !dom.Contains(p) {
				t.Fatalf("%s: suggestion outside domain", acq.Name())
			}
			if err := opt.Observe(p, cost(p)); err != nil {
				t.Fatal(err)
			}
		}
		_, best, ok := opt.Best()
		if !ok || best > 0.6 {
			t.Errorf("%s: best cost %v after 20 iterations, want < 0.6", acq.Name(), best)
		}
	}
}

func TestNilAcquisitionDefaultsToEI(t *testing.T) {
	dom := Domain{N: 2, RMin: 0.1}
	cfg := DefaultConfig()
	cfg.Acquisition = nil
	opt, err := NewOptimizer(dom, cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		p, err := opt.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := opt.Observe(p, p[0]); err != nil {
			t.Fatal(err)
		}
	}
}
