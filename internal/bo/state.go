package bo

import (
	"fmt"
	"math"

	"github.com/mar-hbo/hbo/internal/sim"
)

// OptimizerState is the complete serializable state of an Optimizer: the
// observation database, the RNG position, and — when the surrogate has a
// clean (jitter-free) factorization — the packed Cholesky factor rows, so a
// restored optimizer resumes in O(m) memory copies instead of an O(m³)
// refit or an O(m) network replay of the history.
//
// The state captures everything Next depends on: because the incremental
// appendRow path and a from-scratch refit perform bit-identical arithmetic
// (see gp.go), an optimizer rebuilt from this state produces exactly the
// suggestion stream the exported optimizer would have produced.
type OptimizerState struct {
	// RNGState is the seeded generator's current position (sim.RNG.State).
	RNGState uint64
	// X and Y are the observation database (Algorithm 1's D).
	X [][]float64
	Y []float64
	// GPLengthScale is the length scale of the exported factorization;
	// meaningful only when GPRows > 0.
	GPLengthScale float64
	// GPRows is the number of factorized observations (0 when no clean
	// factor exists — pre-init, or a jittered factor that a restore must
	// refit anyway to reproduce the jitter ladder bit-identically).
	GPRows int
	// GPFactor is the lower-triangular Cholesky factor packed row-major:
	// row i contributes its i+1 leading entries, GPRows*(GPRows+1)/2 total.
	GPFactor []float64
}

// ExportState deep-copies the optimizer's resumable state. The factor is
// exported only when it is jitter-free: a jittered factor is never extended
// incrementally (gp.go), so re-deriving it from the database on restore is
// both necessary for bit-identity and exactly what the live path would do.
func (o *Optimizer) ExportState() *OptimizerState {
	st := &OptimizerState{
		RNGState: o.rng.State(),
		X:        make([][]float64, len(o.xs)),
		Y:        append([]float64(nil), o.ys...),
	}
	for i, x := range o.xs {
		st.X[i] = append([]float64(nil), x...)
	}
	if o.gp != nil && o.gp.jitter == 0 && o.gp.n > 0 {
		st.GPLengthScale = o.gpScale
		st.GPRows = o.gp.n
		st.GPFactor = o.gp.exportFactor()
	}
	return st
}

// NewOptimizerFromState rebuilds an optimizer from an exported state. The
// domain and config must match the exporting optimizer's; the state is
// validated defensively (snapshots cross a disk/network boundary) and
// deep-copied, so the caller may keep mutating it.
func NewOptimizerFromState(dom Domain, cfg Config, st *OptimizerState) (*Optimizer, error) {
	if st == nil {
		return nil, fmt.Errorf("bo: nil optimizer state")
	}
	o, err := NewOptimizer(dom, cfg, sim.NewRNG(st.RNGState))
	if err != nil {
		return nil, err
	}
	if len(st.X) != len(st.Y) {
		return nil, fmt.Errorf("bo: state has %d points but %d costs", len(st.X), len(st.Y))
	}
	o.xs = make([][]float64, len(st.X))
	o.ys = append([]float64(nil), st.Y...)
	for i, x := range st.X {
		if !dom.Contains(x) {
			return nil, fmt.Errorf("bo: state point %d outside domain", i)
		}
		if math.IsNaN(st.Y[i]) || math.IsInf(st.Y[i], 0) {
			return nil, fmt.Errorf("bo: state cost %d is non-finite", i)
		}
		o.xs[i] = append([]float64(nil), x...)
	}
	if st.GPRows == 0 {
		return o, nil
	}
	if st.GPRows < 0 || st.GPRows > len(st.X) {
		return nil, fmt.Errorf("bo: state factor covers %d rows of a %d-point database", st.GPRows, len(st.X))
	}
	if want := st.GPRows * (st.GPRows + 1) / 2; len(st.GPFactor) != want {
		return nil, fmt.Errorf("bo: state factor has %d entries, want %d", len(st.GPFactor), want)
	}
	if st.GPLengthScale <= 0 || math.IsNaN(st.GPLengthScale) || math.IsInf(st.GPLengthScale, 0) {
		return nil, fmt.Errorf("bo: state length scale %v invalid", st.GPLengthScale)
	}
	gp, err := NewGP(Matern52{LengthScale: st.GPLengthScale, SignalVar: 1}, cfg.NoiseVar)
	if err != nil {
		return nil, err
	}
	if err := gp.importFactor(o.xs[:st.GPRows], o.ys[:st.GPRows], st.GPFactor); err != nil {
		return nil, err
	}
	gp.metRestarts = o.metRestarts
	o.gp, o.gpScale = gp, st.GPLengthScale
	return o, nil
}

// exportFactor packs the first n factor rows into a dense row-major
// triangle (row i contributes entries [i*stride, i*stride+i]).
func (g *GP) exportFactor() []float64 {
	out := make([]float64, 0, g.n*(g.n+1)/2)
	for i := 0; i < g.n; i++ {
		out = append(out, g.chol[i*g.stride:i*g.stride+i+1]...)
	}
	return out
}

// importFactor installs a packed jitter-free factor over the first len(x)
// observations, then solves targets against it so the GP is immediately
// predictable. The next Update re-standardizes targets anyway (the
// winsorization clip level moves with the database); what must survive the
// import bit-exactly is the factor, and it does — entries are copied, never
// recomputed.
func (g *GP) importFactor(x [][]float64, y []float64, packed []float64) error {
	n := len(x)
	if n == 0 {
		return fmt.Errorf("bo: cannot import an empty factor")
	}
	if len(y) != n {
		return fmt.Errorf("bo: %d inputs but %d targets", n, len(y))
	}
	if want := n * (n + 1) / 2; len(packed) != want {
		return fmt.Errorf("bo: packed factor has %d entries, want %d", len(packed), want)
	}
	g.ensureStride(n)
	off := 0
	for i := 0; i < n; i++ {
		row := packed[off : off+i+1]
		diag := row[i]
		if !(diag > 0) || math.IsInf(diag, 0) {
			return fmt.Errorf("bo: factor row %d has non-positive diagonal %v", i, diag)
		}
		copy(g.chol[i*g.stride:i*g.stride+i+1], row)
		off += i + 1
	}
	g.x = x
	g.n = n
	g.jitter = 0
	g.setTargets(y)
	return nil
}
