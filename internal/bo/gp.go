// Package bo implements the Bayesian-optimization machinery of the paper
// from scratch on the standard library: Gaussian-process regression with the
// Matérn-5/2 kernel (Eq. 7, ν = 5/2, length scale 1), the Expected
// Improvement acquisition function, and a constrained optimizer over the
// paper's search domain — the simplex of per-resource task proportions
// (Eqs. 8–9) crossed with the triangle-ratio interval (Eq. 10). It replaces
// the scikit-optimize (skopt) dependency of the paper's prototype.
//
// The regression hot path is engineered for the controller's activation
// loop: the Cholesky factor is stored as a flat row-major triangle that
// grows by O(n²) incremental row appends instead of O(n³) refits, and
// PredictInto scores candidates without allocating (see DESIGN.md §9).
package bo

import (
	"errors"
	"fmt"
	"math"

	"github.com/mar-hbo/hbo/internal/obs"
)

// Kernel is a positive-definite covariance function over R^d.
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b []float64) float64
}

// sqrt5 hoists the √5 of the Matérn-5/2 kernel out of the innermost loop.
var sqrt5 = math.Sqrt(5)

// Matern52 is the Matérn kernel with ν = 5/2 (Eq. 7 of the paper):
//
//	k(r) = σ² (1 + √5 r/ℓ + 5r²/3ℓ²) exp(−√5 r/ℓ)
type Matern52 struct {
	// LengthScale is ℓ; the paper uses 1.
	LengthScale float64
	// SignalVar is σ²_φ.
	SignalVar float64
}

var _ Kernel = Matern52{}

// matern52c is a Matern52 with the per-evaluation constants √5/ℓ and
// 5/(3ℓ²) precomputed once; GP fitting and prediction evaluate this form so
// the kernel's innermost loop is two multiplies, a sqrt, and an exp.
type matern52c struct {
	signalVar   float64
	sqrt5OverL  float64 // √5/ℓ
	fiveOver3L2 float64 // 5/(3ℓ²)
}

// compile precomputes the constant factors of the kernel.
func (k Matern52) compile() matern52c {
	return matern52c{
		signalVar:   k.SignalVar,
		sqrt5OverL:  sqrt5 / k.LengthScale,
		fiveOver3L2: 5 / (3 * k.LengthScale * k.LengthScale),
	}
}

// Eval returns the Matérn-5/2 covariance of a and b.
func (k matern52c) Eval(a, b []float64) float64 {
	r2 := 0.0
	for i := range a {
		d := a[i] - b[i]
		r2 += d * d
	}
	r := math.Sqrt(r2)
	s := k.sqrt5OverL * r
	return k.signalVar * (1 + s + k.fiveOver3L2*r2) * math.Exp(-s)
}

// Eval returns the Matérn-5/2 covariance of a and b.
func (k Matern52) Eval(a, b []float64) float64 {
	return k.compile().Eval(a, b)
}

// compileKernel returns the precomputed form of known kernels and the kernel
// itself otherwise.
func compileKernel(k Kernel) Kernel {
	if m, ok := k.(Matern52); ok {
		return m.compile()
	}
	return k
}

// GP is a Gaussian-process regressor (the paper's surrogate model, Eq. 6).
// Fit factorizes the kernel matrix once; Predict then evaluates the
// posterior mean and variance at arbitrary points. Between activations the
// factorization can be extended one observation at a time with Update or
// AddObservation at O(n²) instead of refit's O(n³).
//
// Methods that mutate the GP (Fit, Update, AddObservation) are not safe for
// concurrent use; Predict and PredictInto (with per-goroutine scratch) may
// run concurrently once the GP is fitted.
type GP struct {
	kernel Kernel
	ev     Kernel  // kernel with precomputed constants, used on hot paths
	noise  float64 // observation noise variance added to the diagonal

	x  [][]float64
	n  int // fitted observations
	ys []float64

	// chol is the lower-triangular Cholesky factor of K + noise·I stored
	// row-major with the given stride; row i occupies chol[i*stride : i*stride+i+1].
	chol   []float64
	stride int
	// jitter is the diagonal jitter the current factorization needed; zero
	// in the common case. A jittered factor is never extended incrementally
	// (each fresh fit restarts the jitter ladder from zero, so extending a
	// jittered factor would diverge from a from-scratch refit).
	jitter float64

	yMean    float64
	yStd     float64
	centered []float64 // standardized observations
	alpha    []float64 // (K + noise·I)^{-1} of the standardized observations

	// metRestarts counts jitter-ladder restarts during factorization (an
	// indefinite kernel matrix forcing a retry with more diagonal jitter).
	// Nil — the common case — is a no-op.
	metRestarts *obs.Counter
}

// NewGP returns a regressor with the given kernel and observation-noise
// variance. Noise must be positive: the measured cost in HBO is itself a
// noisy window average.
func NewGP(kernel Kernel, noiseVar float64) (*GP, error) {
	if noiseVar <= 0 {
		return nil, fmt.Errorf("bo: noise variance must be positive, got %v", noiseVar)
	}
	return &GP{kernel: kernel, ev: compileKernel(kernel), noise: noiseVar}, nil
}

// Fit conditions the GP on observations (x, y) with a full O(n³)
// factorization. It does not copy the x rows; the caller must not mutate
// them afterward.
func (g *GP) Fit(x [][]float64, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("bo: %d inputs but %d observations", len(x), len(y))
	}
	if len(x) == 0 {
		return errors.New("bo: cannot fit GP on zero observations")
	}
	n := len(x)
	g.x = x
	g.ensureStride(n) // before g.n moves: it preserves the old factor's rows
	g.n = n
	if err := g.factorize(); err != nil {
		g.n = 0
		return err
	}
	g.setTargets(y)
	return nil
}

// Update extends the fit to the observation set (x, y), where x must be the
// previously fitted inputs followed by zero or more new points and y carries
// the (possibly re-scaled, e.g. re-winsorized) targets for all of them. New
// points are appended to the Cholesky factor at O(n²) each; the targets are
// re-standardized and re-solved at O(n²). It falls back to a full refit when
// the incremental append is numerically unsafe (the previous factorization
// needed jitter, or a new diagonal pivot is non-positive), so the resulting
// model is always identical to a from-scratch Fit on the same data.
func (g *GP) Update(x [][]float64, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("bo: %d inputs but %d observations", len(x), len(y))
	}
	if g.n == 0 || len(x) < g.n || g.jitter > 0 {
		return g.Fit(x, y)
	}
	g.ensureStride(len(x))
	for i := g.n; i < len(x); i++ {
		if !g.appendRow(x, i) {
			g.n = 0
			return g.Fit(x, y)
		}
		g.n = i + 1
	}
	g.x = x
	g.setTargets(y)
	return nil
}

// AddObservation appends a single observation to the fitted GP, extending
// the Cholesky factor incrementally (O(n²) instead of a full refit's O(n³)).
// The point is copied; the raw targets seen so far are retained internally.
func (g *GP) AddObservation(x []float64, y float64) error {
	xc := append([]float64(nil), x...)
	if g.n == 0 {
		return g.Fit([][]float64{xc}, []float64{y})
	}
	xs := append(g.x[:g.n:g.n], xc)
	ys := append(g.ys[:g.n:g.n], y)
	return g.Update(xs, ys)
}

// Observations returns the number of fitted observations.
func (g *GP) Observations() int { return g.n }

// ensureStride grows the flat factor storage to hold n rows, preserving the
// already-factorized triangle.
func (g *GP) ensureStride(n int) {
	if n <= g.stride {
		return
	}
	newStride := g.stride * 2
	if newStride < n {
		newStride = n
	}
	if newStride < 16 {
		newStride = 16
	}
	grown := make([]float64, newStride*newStride)
	for i := 0; i < g.n; i++ {
		copy(grown[i*newStride:i*newStride+i+1], g.chol[i*g.stride:i*g.stride+i+1])
	}
	g.chol = grown
	g.stride = newStride
}

// factorize (re)computes the full Cholesky factor of K + noise·I in place,
// adding growing jitter to the diagonal if the matrix is numerically
// indefinite. Kernel evaluation and elimination are interleaved row by row —
// exactly the arithmetic an incremental appendRow performs, so the two paths
// agree to the last bit.
func (g *GP) factorize() error {
	jitter := 0.0
	for attempt := 0; attempt < 6; attempt++ {
		ok := true
		for i := 0; i < g.n; i++ {
			if !g.eliminateRow(g.x, i, jitter) {
				ok = false
				break
			}
		}
		if ok {
			g.jitter = jitter
			return nil
		}
		g.metRestarts.Inc()
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 100
		}
	}
	return errors.New("bo: kernel matrix is not positive definite even with jitter")
}

// appendRow extends the factor with row i of the observation set x, assuming
// rows 0..i-1 are already factorized jitter-free. It reports whether the new
// diagonal pivot stayed positive.
func (g *GP) appendRow(x [][]float64, i int) bool {
	return g.eliminateRow(x, i, 0)
}

// eliminateRow evaluates kernel row i and performs its forward-elimination
// step of the Cholesky factorization in place.
func (g *GP) eliminateRow(x [][]float64, i int, jitter float64) bool {
	row := g.chol[i*g.stride : i*g.stride+i+1]
	xi := x[i]
	for j := 0; j < i; j++ {
		row[j] = g.ev.Eval(xi, x[j])
	}
	row[i] = g.ev.Eval(xi, xi) + g.noise
	for j := 0; j <= i; j++ {
		sum := row[j]
		if i == j {
			sum += jitter
		}
		lj := g.chol[j*g.stride : j*g.stride+j]
		for k := 0; k < j; k++ {
			sum -= row[k] * lj[k]
		}
		if i == j {
			if sum <= 0 {
				return false
			}
			row[j] = math.Sqrt(sum)
		} else {
			row[j] = sum / g.chol[j*g.stride+j]
		}
	}
	return true
}

// setTargets standardizes the targets and re-solves for alpha against the
// current factorization. O(n²); called whenever the targets change (new
// observation, or a winsorization clip level moved old ones).
func (g *GP) setTargets(y []float64) {
	n := g.n
	g.ys = append(g.ys[:0], y...)
	g.yMean = 0
	for _, v := range y {
		g.yMean += v
	}
	g.yMean /= float64(n)
	// Standardize observations: HBO's measured costs can span orders of
	// magnitude (a saturated configuration is catastrophically slow), and
	// the GP prior assumes unit-scale outputs.
	variance := 0.0
	for _, v := range y {
		d := v - g.yMean
		variance += d * d
	}
	g.yStd = math.Sqrt(variance / float64(n))
	if g.yStd < 1e-9 {
		g.yStd = 1
	}
	g.centered = growFloats(g.centered, n)
	for i, v := range y {
		g.centered[i] = (v - g.yMean) / g.yStd
	}
	g.alpha = growFloats(g.alpha, n)
	copy(g.alpha, g.centered)
	g.forwardSolveInPlace(g.alpha)
	g.backSolveInPlace(g.alpha)
}

// growFloats returns a slice of length n reusing buf's storage when it can.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// forwardSolveInPlace solves L·v = b for lower-triangular L, overwriting b.
func (g *GP) forwardSolveInPlace(b []float64) {
	for i := 0; i < len(b); i++ {
		sum := b[i]
		li := g.chol[i*g.stride : i*g.stride+i]
		for k := 0; k < i; k++ {
			sum -= li[k] * b[k]
		}
		b[i] = sum / g.chol[i*g.stride+i]
	}
}

// backSolveInPlace solves Lᵀ·x = b for lower-triangular L, overwriting b.
func (g *GP) backSolveInPlace(b []float64) {
	n := len(b)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= g.chol[k*g.stride+i] * b[k]
		}
		b[i] = sum / g.chol[i*g.stride+i]
	}
}

// PredictScratch is caller-owned scratch for PredictInto. A zero value is
// ready to use; reusing one across calls makes prediction allocation-free.
// Concurrent predictors must each own their own scratch.
type PredictScratch struct {
	buf []float64
}

// Predict returns the posterior mean and variance at point p (Eq. 6's
// N(μ_t, σ_t²)). Variance is clamped at zero against round-off. It allocates
// a transient buffer; hot loops should hold a PredictScratch and call
// PredictInto instead.
func (g *GP) Predict(p []float64) (mean, variance float64) {
	var s PredictScratch
	return g.PredictInto(p, &s)
}

// PredictInto is Predict with caller-owned scratch: zero allocations once
// the scratch has warmed up, so a candidate-scoring loop can evaluate
// thousands of points without touching the garbage collector.
//
//hbo:noalloc
func (g *GP) PredictInto(p []float64, s *PredictScratch) (mean, variance float64) {
	n := g.n
	if n == 0 {
		return g.yMean, g.ev.Eval(p, p)
	}
	ks := growFloats(s.buf, n) //hbo:allowalloc scratch warm-up: grows once, then every call reuses the buffer
	s.buf = ks
	for i := 0; i < n; i++ {
		ks[i] = g.ev.Eval(p, g.x[i])
	}
	std := 0.0
	for i := range ks {
		std += ks[i] * g.alpha[i]
	}
	mean = g.yMean + g.yStd*std
	g.forwardSolveInPlace(ks)
	variance = g.ev.Eval(p, p)
	for _, vi := range ks {
		variance -= vi * vi
	}
	if variance < 0 {
		variance = 0
	}
	return mean, variance * g.yStd * g.yStd
}

// normPDF is the standard normal density.
func normPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

// normCDF is the standard normal distribution function.
func normCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// ExpectedImprovement returns EI for *minimization*: the expected amount by
// which a draw from N(mean, variance) improves on best.
func ExpectedImprovement(mean, variance, best float64) float64 {
	sigma := math.Sqrt(variance)
	if sigma < 1e-12 {
		if mean < best {
			return best - mean
		}
		return 0
	}
	z := (best - mean) / sigma
	return (best-mean)*normCDF(z) + sigma*normPDF(z)
}

// LogMarginalLikelihood returns the log evidence of the fitted observations
// under the GP prior (computed on the standardized targets): the standard
// model-selection criterion for kernel hyperparameters. It reuses the stored
// standardized targets and alpha, so the quadratic form costs O(n) instead
// of re-evaluating the kernel matrix.
func (g *GP) LogMarginalLikelihood() float64 {
	n := g.n
	if n == 0 || g.chol == nil {
		return math.Inf(-1)
	}
	// -0.5 yᵀ K⁻¹ y  -  Σ log L_ii  -  n/2 log 2π, with y standardized:
	// α = K⁻¹y is stored, so yᵀK⁻¹y = yᵀα directly.
	quadSum := 0.0
	for i := 0; i < n; i++ {
		quadSum += g.centered[i] * g.alpha[i]
	}
	logDet := 0.0
	for i := 0; i < n; i++ {
		logDet += math.Log(g.chol[i*g.stride+i])
	}
	return -0.5*quadSum - logDet - float64(n)/2*math.Log(2*math.Pi)
}

// SelectLengthScale fits a GP at each candidate length scale and returns the
// one with the highest log marginal likelihood — simple grid-search type-II
// maximum likelihood, the standard way BO libraries tune the Matérn kernel.
func SelectLengthScale(x [][]float64, y []float64, noiseVar float64, candidates []float64) (float64, error) {
	if len(candidates) == 0 {
		return 0, errors.New("bo: no length-scale candidates")
	}
	best := candidates[0]
	bestLML := math.Inf(-1)
	for _, l := range candidates {
		if l <= 0 {
			return 0, fmt.Errorf("bo: non-positive candidate length scale %v", l)
		}
		gp, err := NewGP(Matern52{LengthScale: l, SignalVar: 1}, noiseVar)
		if err != nil {
			return 0, err
		}
		if err := gp.Fit(x, y); err != nil {
			continue // indefinite at this scale; skip
		}
		if lml := gp.LogMarginalLikelihood(); lml > bestLML {
			bestLML = lml
			best = l
		}
	}
	if math.IsInf(bestLML, -1) {
		return 0, errors.New("bo: no candidate length scale produced a valid fit")
	}
	return best, nil
}
