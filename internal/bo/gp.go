// Package bo implements the Bayesian-optimization machinery of the paper
// from scratch on the standard library: Gaussian-process regression with the
// Matérn-5/2 kernel (Eq. 7, ν = 5/2, length scale 1), the Expected
// Improvement acquisition function, and a constrained optimizer over the
// paper's search domain — the simplex of per-resource task proportions
// (Eqs. 8–9) crossed with the triangle-ratio interval (Eq. 10). It replaces
// the scikit-optimize (skopt) dependency of the paper's prototype.
package bo

import (
	"errors"
	"fmt"
	"math"
)

// Kernel is a positive-definite covariance function over R^d.
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b []float64) float64
}

// Matern52 is the Matérn kernel with ν = 5/2 (Eq. 7 of the paper):
//
//	k(r) = σ² (1 + √5 r/ℓ + 5r²/3ℓ²) exp(−√5 r/ℓ)
type Matern52 struct {
	// LengthScale is ℓ; the paper uses 1.
	LengthScale float64
	// SignalVar is σ²_φ.
	SignalVar float64
}

var _ Kernel = Matern52{}

// Eval returns the Matérn-5/2 covariance of a and b.
func (k Matern52) Eval(a, b []float64) float64 {
	r := 0.0
	for i := range a {
		d := a[i] - b[i]
		r += d * d
	}
	r = math.Sqrt(r)
	s := math.Sqrt(5) * r / k.LengthScale
	return k.SignalVar * (1 + s + 5*r*r/(3*k.LengthScale*k.LengthScale)) * math.Exp(-s)
}

// GP is a Gaussian-process regressor (the paper's surrogate model, Eq. 6).
// Fit factorizes the kernel matrix once; Predict then evaluates the
// posterior mean and variance at arbitrary points.
type GP struct {
	kernel Kernel
	noise  float64 // observation noise variance added to the diagonal

	x     [][]float64
	yMean float64
	yStd  float64
	chol  [][]float64 // lower-triangular Cholesky factor of K + noise·I
	alpha []float64   // (K + noise·I)^{-1} of the standardized observations
}

// NewGP returns a regressor with the given kernel and observation-noise
// variance. Noise must be positive: the measured cost in HBO is itself a
// noisy window average.
func NewGP(kernel Kernel, noiseVar float64) (*GP, error) {
	if noiseVar <= 0 {
		return nil, fmt.Errorf("bo: noise variance must be positive, got %v", noiseVar)
	}
	return &GP{kernel: kernel, noise: noiseVar}, nil
}

// Fit conditions the GP on observations (x, y). It copies neither slice; the
// caller must not mutate them afterward.
func (g *GP) Fit(x [][]float64, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("bo: %d inputs but %d observations", len(x), len(y))
	}
	if len(x) == 0 {
		return errors.New("bo: cannot fit GP on zero observations")
	}
	n := len(x)
	g.x = x
	g.yMean = 0
	for _, v := range y {
		g.yMean += v
	}
	g.yMean /= float64(n)
	// Standardize observations: HBO's measured costs can span orders of
	// magnitude (a saturated configuration is catastrophically slow), and
	// the GP prior assumes unit-scale outputs.
	variance := 0.0
	for _, v := range y {
		d := v - g.yMean
		variance += d * d
	}
	g.yStd = math.Sqrt(variance / float64(n))
	if g.yStd < 1e-9 {
		g.yStd = 1
	}

	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := g.kernel.Eval(x[i], x[j])
			k[i][j] = v
			k[j][i] = v
		}
		k[i][i] += g.noise
	}
	chol, err := cholesky(k)
	if err != nil {
		return err
	}
	g.chol = chol

	centered := make([]float64, n)
	for i, v := range y {
		centered[i] = (v - g.yMean) / g.yStd
	}
	g.alpha = cholSolve(chol, centered)
	return nil
}

// Predict returns the posterior mean and variance at point p (Eq. 6's
// N(μ_t, σ_t²)). Variance is clamped at zero against round-off.
func (g *GP) Predict(p []float64) (mean, variance float64) {
	n := len(g.x)
	if n == 0 {
		return g.yMean, g.kernel.Eval(p, p)
	}
	ks := make([]float64, n)
	for i, xi := range g.x {
		ks[i] = g.kernel.Eval(p, xi)
	}
	std := 0.0
	for i := range ks {
		std += ks[i] * g.alpha[i]
	}
	mean = g.yMean + g.yStd*std
	v := forwardSolve(g.chol, ks)
	variance = g.kernel.Eval(p, p)
	for _, vi := range v {
		variance -= vi * vi
	}
	if variance < 0 {
		variance = 0
	}
	return mean, variance * g.yStd * g.yStd
}

// cholesky returns the lower-triangular factor L with L·Lᵀ = m, adding
// growing jitter to the diagonal if the matrix is numerically indefinite.
func cholesky(m [][]float64) ([][]float64, error) {
	n := len(m)
	jitter := 0.0
	for attempt := 0; attempt < 6; attempt++ {
		l := make([][]float64, n)
		for i := range l {
			l[i] = make([]float64, n)
		}
		ok := true
		for i := 0; i < n && ok; i++ {
			for j := 0; j <= i; j++ {
				sum := m[i][j]
				if i == j {
					sum += jitter
				}
				for k := 0; k < j; k++ {
					sum -= l[i][k] * l[j][k]
				}
				if i == j {
					if sum <= 0 {
						ok = false
						break
					}
					l[i][j] = math.Sqrt(sum)
				} else {
					l[i][j] = sum / l[j][j]
				}
			}
		}
		if ok {
			return l, nil
		}
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 100
		}
	}
	return nil, errors.New("bo: kernel matrix is not positive definite even with jitter")
}

// forwardSolve solves L·v = b for lower-triangular L.
func forwardSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * v[k]
		}
		v[i] = sum / l[i][i]
	}
	return v
}

// backSolve solves Lᵀ·x = b for lower-triangular L.
func backSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k][i] * x[k]
		}
		x[i] = sum / l[i][i]
	}
	return x
}

// cholSolve solves (L·Lᵀ)·x = b.
func cholSolve(l [][]float64, b []float64) []float64 {
	return backSolve(l, forwardSolve(l, b))
}

// normPDF is the standard normal density.
func normPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

// normCDF is the standard normal distribution function.
func normCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// ExpectedImprovement returns EI for *minimization*: the expected amount by
// which a draw from N(mean, variance) improves on best.
func ExpectedImprovement(mean, variance, best float64) float64 {
	sigma := math.Sqrt(variance)
	if sigma < 1e-12 {
		if mean < best {
			return best - mean
		}
		return 0
	}
	z := (best - mean) / sigma
	return (best-mean)*normCDF(z) + sigma*normPDF(z)
}

// LogMarginalLikelihood returns the log evidence of the fitted observations
// under the GP prior (computed on the standardized targets): the standard
// model-selection criterion for kernel hyperparameters.
func (g *GP) LogMarginalLikelihood() float64 {
	n := len(g.x)
	if n == 0 || g.chol == nil {
		return math.Inf(-1)
	}
	// -0.5 yᵀ K⁻¹ y  -  Σ log L_ii  -  n/2 log 2π, with y standardized.
	// α = K⁻¹y is stored; reconstruct y = Kα to form yᵀK⁻¹y = yᵀα.
	quadSum := 0.0
	for i := 0; i < n; i++ {
		yi := 0.0
		for j := 0; j < n; j++ {
			kij := g.kernel.Eval(g.x[i], g.x[j])
			if i == j {
				kij += g.noise
			}
			yi += kij * g.alpha[j]
		}
		quadSum += yi * g.alpha[i]
	}
	logDet := 0.0
	for i := 0; i < n; i++ {
		logDet += math.Log(g.chol[i][i])
	}
	return -0.5*quadSum - logDet - float64(n)/2*math.Log(2*math.Pi)
}

// SelectLengthScale fits a GP at each candidate length scale and returns the
// one with the highest log marginal likelihood — simple grid-search type-II
// maximum likelihood, the standard way BO libraries tune the Matérn kernel.
func SelectLengthScale(x [][]float64, y []float64, noiseVar float64, candidates []float64) (float64, error) {
	if len(candidates) == 0 {
		return 0, errors.New("bo: no length-scale candidates")
	}
	best := candidates[0]
	bestLML := math.Inf(-1)
	for _, l := range candidates {
		if l <= 0 {
			return 0, fmt.Errorf("bo: non-positive candidate length scale %v", l)
		}
		gp, err := NewGP(Matern52{LengthScale: l, SignalVar: 1}, noiseVar)
		if err != nil {
			return 0, err
		}
		if err := gp.Fit(x, y); err != nil {
			continue // indefinite at this scale; skip
		}
		if lml := gp.LogMarginalLikelihood(); lml > bestLML {
			bestLML = lml
			best = l
		}
	}
	if math.IsInf(bestLML, -1) {
		return 0, errors.New("bo: no candidate length scale produced a valid fit")
	}
	return best, nil
}
