package bo

import (
	"fmt"
	"math"
)

// Acquisition scores a candidate point from the GP posterior; the optimizer
// evaluates the point with the highest score next. The paper settles on
// Expected Improvement after finding Probability of Improvement "too
// conservative during exploration" and Lower Confidence Bound in need of "a
// dedicated exploration/exploitation parameter" — all three are implemented
// so the choice can be ablated (see experiments.RunAcquisitionStudy).
type Acquisition interface {
	// Score rates a candidate given its posterior mean/variance and the
	// best observed cost so far; higher is better.
	Score(mean, variance, best float64) float64
	// Name identifies the acquisition in reports.
	Name() string
}

// EI is Expected Improvement (the paper's choice).
type EI struct{}

var _ Acquisition = EI{}

// Name implements Acquisition.
func (EI) Name() string { return "EI" }

// Score implements Acquisition.
func (EI) Score(mean, variance, best float64) float64 {
	return ExpectedImprovement(mean, variance, best)
}

// PI is Probability of Improvement: the posterior probability of beating the
// incumbent by at least a small margin xi.
type PI struct {
	// Xi is the improvement margin; zero degenerates to pure exploitation.
	Xi float64
}

var _ Acquisition = PI{}

// Name implements Acquisition.
func (p PI) Name() string { return "PI" }

// Score implements Acquisition.
func (p PI) Score(mean, variance, best float64) float64 {
	sigma := math.Sqrt(variance)
	if sigma < 1e-12 {
		if mean < best-p.Xi {
			return 1
		}
		return 0
	}
	return normCDF((best - p.Xi - mean) / sigma)
}

// LCB is the Lower Confidence Bound for minimization: score is the negated
// bound mean − Beta·sigma, so lower bounds rank higher.
type LCB struct {
	// Beta is the exploration/exploitation trade-off parameter the paper
	// notes must be tuned per problem.
	Beta float64
}

var _ Acquisition = LCB{}

// Name implements Acquisition.
func (l LCB) Name() string { return fmt.Sprintf("LCB(%.1f)", l.Beta) }

// Score implements Acquisition.
func (l LCB) Score(mean, variance, _ float64) float64 {
	return -(mean - l.Beta*math.Sqrt(variance))
}
