package bo

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/mar-hbo/hbo/internal/sim"
)

func TestMatern52Properties(t *testing.T) {
	k := Matern52{LengthScale: 1, SignalVar: 1}
	a := []float64{0.2, 0.3, 0.5}
	if v := k.Eval(a, a); math.Abs(v-1) > 1e-12 {
		t.Fatalf("k(a,a) = %v, want SignalVar", v)
	}
	b := []float64{0.9, 0.0, 0.1}
	if k.Eval(a, b) != k.Eval(b, a) {
		t.Fatal("kernel not symmetric")
	}
	// Decreasing in distance.
	near := k.Eval(a, []float64{0.25, 0.3, 0.45})
	far := k.Eval(a, []float64{1, 1, 1})
	if near <= far {
		t.Fatalf("kernel should decay with distance: near %v, far %v", near, far)
	}
	if far < 0 {
		t.Fatalf("kernel negative: %v", far)
	}
}

func TestGPInterpolates(t *testing.T) {
	gp, err := NewGP(Matern52{LengthScale: 1, SignalVar: 1}, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	xs := [][]float64{{0}, {0.5}, {1}, {1.5}, {2}}
	f := func(x float64) float64 { return math.Sin(2 * x) }
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = f(x[0])
	}
	if err := gp.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	// At data points: near-exact interpolation, near-zero variance.
	for i, x := range xs {
		m, v := gp.Predict(x)
		if math.Abs(m-ys[i]) > 1e-3 {
			t.Errorf("mean at %v = %v, want %v", x, m, ys[i])
		}
		if v > 1e-4 {
			t.Errorf("variance at data point %v = %v, want ~0", x, v)
		}
	}
	// Between data points: reasonable prediction, positive variance.
	m, v := gp.Predict([]float64{0.75})
	if math.Abs(m-f(0.75)) > 0.1 {
		t.Errorf("interpolated mean = %v, want ~%v", m, f(0.75))
	}
	if v <= 0 {
		t.Errorf("interpolated variance = %v, want > 0", v)
	}
	// Far away: mean reverts toward the data mean, variance grows.
	_, vFar := gp.Predict([]float64{10})
	if vFar <= v {
		t.Errorf("variance should grow away from data: %v vs %v", vFar, v)
	}
}

func TestGPVarianceNonNegativeProperty(t *testing.T) {
	gp, err := NewGP(Matern52{LengthScale: 1, SignalVar: 1}, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(3)
	xs := make([][]float64, 12)
	ys := make([]float64, 12)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64()}
		ys[i] = rng.Norm()
	}
	if err := gp.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint16) bool {
		p := []float64{float64(a) / 65535 * 2, float64(b) / 65535 * 2}
		m, v := gp.Predict(p)
		return v >= 0 && !math.IsNaN(m) && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGPFitErrors(t *testing.T) {
	gp, err := NewGP(Matern52{LengthScale: 1, SignalVar: 1}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if err := gp.Fit(nil, nil); err == nil {
		t.Fatal("empty fit succeeded")
	}
	if err := gp.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched fit succeeded")
	}
	if _, err := NewGP(Matern52{LengthScale: 1, SignalVar: 1}, 0); err == nil {
		t.Fatal("zero noise accepted")
	}
}

func TestGPDuplicatePointsNeedJitter(t *testing.T) {
	gp, err := NewGP(Matern52{LengthScale: 1, SignalVar: 1}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	xs := [][]float64{{0.5}, {0.5}, {0.5}}
	ys := []float64{1, 1.01, 0.99}
	if err := gp.Fit(xs, ys); err != nil {
		t.Fatalf("duplicate points should be handled with jitter: %v", err)
	}
	m, _ := gp.Predict([]float64{0.5})
	if math.Abs(m-1) > 0.05 {
		t.Fatalf("mean at duplicated point = %v, want ~1", m)
	}
}

func TestExpectedImprovement(t *testing.T) {
	// A point predicted to be well below best with certainty: EI ~= gap.
	if ei := ExpectedImprovement(0, 1e-16, 1); math.Abs(ei-1) > 1e-6 {
		t.Fatalf("certain-improvement EI = %v, want 1", ei)
	}
	// Certain non-improvement: zero.
	if ei := ExpectedImprovement(2, 1e-16, 1); ei != 0 {
		t.Fatalf("certain-worse EI = %v, want 0", ei)
	}
	// Uncertainty at the same mean still has positive EI.
	if ei := ExpectedImprovement(1, 1, 1); ei <= 0 {
		t.Fatalf("uncertain EI = %v, want > 0", ei)
	}
	// More variance, more EI at equal mean.
	if ExpectedImprovement(1, 4, 1) <= ExpectedImprovement(1, 1, 1) {
		t.Fatal("EI should grow with variance")
	}
}

func TestDomainSampleAndProject(t *testing.T) {
	dom := Domain{N: 3, RMin: 0.2}
	rng := sim.NewRNG(5)
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		p := dom.Sample(r)
		return dom.Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Project arbitrary garbage into the domain.
	for i := 0; i < 200; i++ {
		p := []float64{rng.Norm() * 3, rng.Norm() * 3, rng.Norm() * 3, rng.Norm() * 3}
		dom.Project(p)
		if !dom.Contains(p) {
			t.Fatalf("projected point %v outside domain", p)
		}
	}
	// All-negative proportions fall back to uniform.
	p := []float64{-1, -2, -3, 0.5}
	dom.Project(p)
	if math.Abs(p[0]-1.0/3) > 1e-12 {
		t.Fatalf("degenerate projection = %v", p)
	}
}

func TestDomainValidate(t *testing.T) {
	if err := (Domain{N: 0, RMin: 0.1}).Validate(); err == nil {
		t.Fatal("N=0 accepted")
	}
	if err := (Domain{N: 2, RMin: 1.5}).Validate(); err == nil {
		t.Fatal("RMin>1 accepted")
	}
}

func TestOptimizerMinimizesSyntheticCost(t *testing.T) {
	// Cost rewards putting proportion on resource 2 and a ratio near 0.7 —
	// a smooth stand-in for the HBO landscape.
	cost := func(p []float64) float64 {
		dx := p[3] - 0.7
		return (1-p[2])*0.8 + 3*dx*dx
	}
	dom := Domain{N: 3, RMin: 0.3}
	opt, err := NewOptimizer(dom, DefaultConfig(), sim.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 20; iter++ {
		p, err := opt.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !dom.Contains(p) {
			t.Fatalf("suggestion %v outside domain", p)
		}
		if err := opt.Observe(p, cost(p)); err != nil {
			t.Fatal(err)
		}
	}
	best, bestCost, ok := opt.Best()
	if !ok {
		t.Fatal("no best after 20 observations")
	}
	if bestCost > 0.25 {
		t.Fatalf("best cost after 20 iters = %v (point %v), want <= 0.25", bestCost, best)
	}
	if best[2] < 0.5 {
		t.Fatalf("best point %v did not discover resource-2 preference", best)
	}
	if math.Abs(best[3]-0.7) > 0.2 {
		t.Fatalf("best ratio %v, want near 0.7", best[3])
	}
}

func TestOptimizerBeatsRandomSearch(t *testing.T) {
	cost := func(p []float64) float64 {
		// Narrow valley: needs exploitation to find.
		d := 0.0
		target := []float64{0.1, 0.6, 0.3, 0.8}
		for i := range p {
			diff := p[i] - target[i]
			d += diff * diff
		}
		return d
	}
	dom := Domain{N: 3, RMin: 0.2}
	run := func(bayes bool, seed uint64) float64 {
		rng := sim.NewRNG(seed)
		opt, err := NewOptimizer(dom, DefaultConfig(), rng)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		for i := 0; i < 25; i++ {
			var p []float64
			if bayes {
				p, err = opt.Next()
				if err != nil {
					t.Fatal(err)
				}
			} else {
				p = dom.Sample(rng)
			}
			c := cost(p)
			if bayes {
				if err := opt.Observe(p, c); err != nil {
					t.Fatal(err)
				}
			}
			if c < best {
				best = c
			}
		}
		return best
	}
	var bayesSum, randSum float64
	const trials = 5
	for s := uint64(0); s < trials; s++ {
		bayesSum += run(true, 100+s)
		randSum += run(false, 100+s)
	}
	if bayesSum >= randSum {
		t.Fatalf("BO (%v) not better than random (%v) on average", bayesSum/trials, randSum/trials)
	}
}

func TestOptimizerObserveRejectsBadInput(t *testing.T) {
	dom := Domain{N: 2, RMin: 0.2}
	opt, err := NewOptimizer(dom, DefaultConfig(), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Observe([]float64{0.5, 0.5, 0.5}, math.NaN()); err == nil {
		t.Fatal("NaN cost accepted")
	}
	if err := opt.Observe([]float64{2, -1, 0.5}, 1); err == nil {
		t.Fatal("out-of-domain point accepted")
	}
	if _, _, ok := opt.Best(); ok {
		t.Fatal("Best reported ok with no observations")
	}
}

func TestOptimizerDeterminism(t *testing.T) {
	dom := Domain{N: 3, RMin: 0.3}
	run := func() []float64 {
		opt, err := NewOptimizer(dom, DefaultConfig(), sim.NewRNG(77))
		if err != nil {
			t.Fatal(err)
		}
		var last []float64
		for i := 0; i < 8; i++ {
			p, err := opt.Next()
			if err != nil {
				t.Fatal(err)
			}
			if err := opt.Observe(p, p[0]*2+p[3]); err != nil {
				t.Fatal(err)
			}
			last = p
		}
		return last
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("optimizer not deterministic: %v vs %v", a, b)
		}
	}
}

func TestDistance(t *testing.T) {
	if d := Distance([]float64{0, 0}, []float64{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Fatalf("distance = %v, want 5", d)
	}
}

func TestNewOptimizerValidation(t *testing.T) {
	dom := Domain{N: 2, RMin: 0.1}
	if _, err := NewOptimizer(dom, Config{InitSamples: 0, Candidates: 1, LengthScale: 1, NoiseVar: 1e-3}, sim.NewRNG(1)); err == nil {
		t.Fatal("InitSamples=0 accepted")
	}
	if _, err := NewOptimizer(dom, DefaultConfig(), nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
	bad := DefaultConfig()
	bad.LengthScale = 0
	if _, err := NewOptimizer(dom, bad, sim.NewRNG(1)); err == nil {
		t.Fatal("zero length scale accepted")
	}
}
