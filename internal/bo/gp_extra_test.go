package bo

import (
	"math"
	"testing"

	"github.com/mar-hbo/hbo/internal/sim"
)

func TestLogMarginalLikelihoodPrefersTrueScale(t *testing.T) {
	// Draw a smooth function with a known characteristic scale and check
	// the LML ranks a matching length scale above badly mismatched ones.
	rng := sim.NewRNG(7)
	const n = 30
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := 2 * rng.Float64()
		xs[i] = []float64{x}
		ys[i] = math.Sin(3*x) + 0.01*rng.Norm() // wiggles every ~2 units of 3x => scale ~0.3-0.7
	}
	lml := func(l float64) float64 {
		gp, err := NewGP(Matern52{LengthScale: l, SignalVar: 1}, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		if err := gp.Fit(xs, ys); err != nil {
			t.Fatal(err)
		}
		return gp.LogMarginalLikelihood()
	}
	good := lml(0.5)
	tooShort := lml(0.01)
	tooLong := lml(20)
	if good <= tooShort || good <= tooLong {
		t.Fatalf("LML did not prefer the matching scale: good=%v short=%v long=%v", good, tooShort, tooLong)
	}
}

func TestSelectLengthScale(t *testing.T) {
	rng := sim.NewRNG(9)
	const n = 25
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := 2 * rng.Float64()
		xs[i] = []float64{x}
		ys[i] = math.Sin(3*x) + 0.01*rng.Norm()
	}
	l, err := SelectLengthScale(xs, ys, 1e-4, []float64{0.01, 0.1, 0.3, 0.5, 5, 50})
	if err != nil {
		t.Fatal(err)
	}
	if l < 0.1 || l > 5 {
		t.Fatalf("selected implausible length scale %v", l)
	}
	if _, err := SelectLengthScale(xs, ys, 1e-4, nil); err == nil {
		t.Fatal("empty candidate list accepted")
	}
	if _, err := SelectLengthScale(xs, ys, 1e-4, []float64{-1}); err == nil {
		t.Fatal("negative candidate accepted")
	}
}

func TestOptimizerAutoLengthScale(t *testing.T) {
	cost := func(p []float64) float64 {
		dx := p[3] - 0.7
		return (1-p[2])*0.8 + 3*dx*dx
	}
	dom := Domain{N: 3, RMin: 0.3}
	cfg := DefaultConfig()
	cfg.AutoLengthScale = true
	opt, err := NewOptimizer(dom, cfg, sim.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p, err := opt.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := opt.Observe(p, cost(p)); err != nil {
			t.Fatal(err)
		}
	}
	_, best, ok := opt.Best()
	if !ok || best > 0.4 {
		t.Fatalf("auto-length-scale optimizer best %v, want <= 0.4", best)
	}
}
