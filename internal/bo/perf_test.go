package bo

// Tests for the performance architecture (DESIGN.md §9): the incremental
// Cholesky update must be numerically indistinguishable from a full refit,
// the prediction hot path must not allocate, and parallel candidate scoring
// must be bit-identical to a serial scan.

import (
	"math"
	"testing"

	"github.com/mar-hbo/hbo/internal/sim"
)

// TestIncrementalUpdateMatchesFullRefit grows one GP observation-by-
// observation via Update (the incremental append-row path) and refits a
// second GP from scratch at every step; posteriors must agree to 1e-9.
// Every few steps the targets are rewritten wholesale, mimicking the
// optimizer's winsorization clip level moving, which must also be absorbed
// without drift.
func TestIncrementalUpdateMatchesFullRefit(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 42} {
		rng := sim.NewRNG(seed)
		dom := Domain{N: 3, RMin: 0.1}
		kern := Matern52{LengthScale: 0.3, SignalVar: 1}

		inc, err := NewGP(kern, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		var xs [][]float64
		var ys []float64
		probes := make([][]float64, 8)
		for i := range probes {
			probes[i] = dom.Sample(rng)
		}
		for step := 0; step < 30; step++ {
			xs = append(xs, dom.Sample(rng))
			ys = append(ys, rng.Norm())
			if step%5 == 4 {
				// Wholesale target rewrite (winsorization analogue): the
				// factorization must be reused, only alpha recomputed.
				clip := rng.Norm()
				for i := range ys {
					if ys[i] > clip {
						ys[i] = clip
					}
				}
			}
			if err := inc.Update(xs, ys); err != nil {
				t.Fatalf("seed %d step %d: Update: %v", seed, step, err)
			}

			fresh, err := NewGP(kern, 0.01)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.Fit(xs, ys); err != nil {
				t.Fatalf("seed %d step %d: Fit: %v", seed, step, err)
			}
			for _, p := range probes {
				m1, v1 := inc.Predict(p)
				m2, v2 := fresh.Predict(p)
				if math.Abs(m1-m2) > 1e-9 || math.Abs(v1-v2) > 1e-9 {
					t.Fatalf("seed %d step %d: incremental (%.12g, %.12g) vs refit (%.12g, %.12g)",
						seed, step, m1, v1, m2, v2)
				}
			}
			l1 := inc.LogMarginalLikelihood()
			l2 := fresh.LogMarginalLikelihood()
			if math.Abs(l1-l2) > 1e-9 {
				t.Fatalf("seed %d step %d: LML %v vs %v", seed, step, l1, l2)
			}
		}
	}
}

// TestAddObservationMatchesFit checks the single-point convenience path.
func TestAddObservationMatchesFit(t *testing.T) {
	rng := sim.NewRNG(9)
	dom := Domain{N: 2, RMin: 0.1}
	kern := Matern52{LengthScale: 0.5, SignalVar: 1}
	inc, err := NewGP(kern, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	var xs [][]float64
	var ys []float64
	probe := dom.Sample(rng)
	for i := 0; i < 20; i++ {
		x := dom.Sample(rng)
		y := rng.Norm()
		xs = append(xs, x)
		ys = append(ys, y)
		if err := inc.AddObservation(x, y); err != nil {
			t.Fatal(err)
		}
		fresh, err := NewGP(kern, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Fit(xs, ys); err != nil {
			t.Fatal(err)
		}
		m1, v1 := inc.Predict(probe)
		m2, v2 := fresh.Predict(probe)
		if math.Abs(m1-m2) > 1e-9 || math.Abs(v1-v2) > 1e-9 {
			t.Fatalf("step %d: incremental (%v, %v) vs refit (%v, %v)", i, m1, v1, m2, v2)
		}
	}
	if inc.Observations() != 20 {
		t.Fatalf("Observations = %d, want 20", inc.Observations())
	}
}

// TestPredictIntoZeroAlloc pins the hot path's allocation-free contract:
// with a warm scratch, PredictInto must not touch the heap.
func TestPredictIntoZeroAlloc(t *testing.T) {
	rng := sim.NewRNG(4)
	dom := Domain{N: 3, RMin: 0.1}
	gp, err := NewGP(Matern52{LengthScale: 0.3, SignalVar: 1}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([][]float64, 25)
	ys := make([]float64, 25)
	for i := range xs {
		xs[i] = dom.Sample(rng)
		ys[i] = rng.Norm()
	}
	if err := gp.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	probe := dom.Sample(rng)
	var scratch PredictScratch
	gp.PredictInto(probe, &scratch) // warm the scratch buffer
	allocs := testing.AllocsPerRun(100, func() {
		gp.PredictInto(probe, &scratch)
	})
	if allocs != 0 {
		t.Fatalf("PredictInto allocates %.1f times per call, want 0", allocs)
	}

	// And PredictInto must agree exactly with Predict.
	m1, v1 := gp.Predict(probe)
	m2, v2 := gp.PredictInto(probe, &scratch)
	if m1 != m2 || v1 != v2 {
		t.Fatalf("PredictInto (%v, %v) != Predict (%v, %v)", m2, v2, m1, v1)
	}
}

// TestParallelSuggestionDeterminism runs two identically seeded optimizers,
// one serial and one with a 4-worker candidate-scoring pool, through a full
// observe/suggest loop; every suggestion must be bit-identical.
func TestParallelSuggestionDeterminism(t *testing.T) {
	dom := Domain{N: 3, RMin: 0.1}
	mk := func(jobs int) *Optimizer {
		cfg := DefaultConfig()
		cfg.Jobs = jobs
		opt, err := NewOptimizer(dom, cfg, sim.NewRNG(77))
		if err != nil {
			t.Fatal(err)
		}
		return opt
	}
	serial, par := mk(1), mk(4)
	// Synthetic objective, deterministic in the point.
	cost := func(p []float64) float64 {
		s := 0.0
		for i, v := range p {
			s += float64(i+1) * (v - 0.4) * (v - 0.4)
		}
		return s
	}
	for iter := 0; iter < 15; iter++ {
		p1, err := serial.Next()
		if err != nil {
			t.Fatal(err)
		}
		p2, err := par.Next()
		if err != nil {
			t.Fatal(err)
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("iter %d dim %d: serial %v != parallel %v", iter, i, p1, p2)
			}
		}
		if err := serial.Observe(p1, cost(p1)); err != nil {
			t.Fatal(err)
		}
		if err := par.Observe(p2, cost(p2)); err != nil {
			t.Fatal(err)
		}
	}
}
