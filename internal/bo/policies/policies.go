// Package policies hosts the optimizer arena's rival entrants for the joint
// (c_t, x_t) search: a LinUCB contextual bandit over a discretized
// allocation simplex × quality grid, Gaussian Thompson sampling over the
// same arm set, a separable CMA-ES, and pure random
// search. Each implements bo.Policy under the package's determinism
// contract (all randomness via sim.RNG, no wall clock, bit-identical
// replay from equal seeds); the GP-EI bo.Optimizer registers here too so
// every serving and tournament path selects policies by name through one
// registry.
package policies

import (
	"fmt"
	"sort"

	"github.com/mar-hbo/hbo/internal/bo"
	"github.com/mar-hbo/hbo/internal/sim"
)

// Canonical policy names. The empty string is an alias for NameGPEI
// everywhere a name is accepted: the GP-EI optimizer is the paper's default
// and pre-arena callers never named it.
const (
	NameGPEI     = "gp-ei"
	NameLinUCB   = "linucb"
	NameCMAES    = "cmaes"
	NameRandom   = "random"
	NameThompson = "thompson"
)

// Names returns the registered policy names, sorted.
func Names() []string {
	names := []string{NameGPEI, NameLinUCB, NameCMAES, NameRandom, NameThompson}
	sort.Strings(names)
	return names
}

// Valid reports whether name selects a registered policy. The empty string
// is valid (it means the GP-EI default).
func Valid(name string) bool {
	switch name {
	case "", NameGPEI, NameLinUCB, NameCMAES, NameRandom, NameThompson:
		return true
	}
	return false
}

// Canonical maps a policy name to its canonical serving form: the GP-EI
// default collapses to the empty string so pre-arena sessions, snapshots,
// and wire frames compare equal to ones that name it explicitly.
func Canonical(name string) string {
	if name == NameGPEI {
		return ""
	}
	return name
}

// Durable reports whether the named policy's sessions survive eviction via
// snapshots. CMA-ES carries evolution paths an OptimizerState cannot
// express, so it is ephemeral; everything else round-trips.
func Durable(name string) bool {
	return Canonical(name) != NameCMAES
}

// New constructs the named policy over dom. cfg supplies the shared search
// parameters every entrant interprets for itself (InitSamples bounds the
// warm-up phase; GP-specific fields are ignored by non-GP entrants). All
// randomness flows from rng.
func New(name string, dom bo.Domain, cfg bo.Config, rng *sim.RNG) (bo.Policy, error) {
	switch Canonical(name) {
	case "":
		return bo.NewOptimizer(dom, cfg, rng)
	case NameLinUCB:
		return NewLinUCB(dom, cfg, rng)
	case NameCMAES:
		return NewCMAES(dom, cfg, rng)
	case NameRandom:
		return NewRandom(dom, cfg, rng)
	case NameThompson:
		return NewThompson(dom, cfg, rng)
	}
	return nil, fmt.Errorf("policies: unknown policy %q (have %v)", name, Names())
}

// Restore rebuilds the named policy from an exported state so its future
// suggestion stream continues bit-identically. Only durable policies
// restore; asking for an ephemeral one is an error the caller must map to
// its replay fallback.
func Restore(name string, dom bo.Domain, cfg bo.Config, st *bo.OptimizerState) (bo.Policy, error) {
	switch Canonical(name) {
	case "":
		return bo.NewOptimizerFromState(dom, cfg, st)
	case NameLinUCB:
		return restoreLinUCB(dom, cfg, st)
	case NameRandom:
		return restoreRandom(dom, cfg, st)
	case NameThompson:
		return restoreThompson(dom, cfg, st)
	case NameCMAES:
		return nil, fmt.Errorf("policies: %s is ephemeral and cannot be restored from a snapshot", NameCMAES)
	}
	return nil, fmt.Errorf("policies: unknown policy %q (have %v)", name, Names())
}
