package policies

import (
	"fmt"
	"math"

	"github.com/mar-hbo/hbo/internal/bo"
	"github.com/mar-hbo/hbo/internal/sim"
)

// linucbAlpha is the exploration width of the UCB term. The classic
// theory-driven schedule scales it with log(t); a fixed width keeps the
// policy stateless beyond (A⁻¹, b) and is standard practice for LinUCB in
// small-horizon settings like the HBO loop (≤ tens of activations).
const linucbAlpha = 1.0

// linucbRatioGridSize is the quality-ratio discretization per allocation
// arm: K evenly spaced values spanning [RMin, 1].
const linucbRatioGridSize = 5

// linucbMaxArms bounds the discretized action set. The simplex granularity
// is chosen adaptively: the finest grid whose composition count × ratio
// grid stays under this bound, so low-dimensional domains get fine arms and
// high-dimensional ones degrade gracefully instead of exploding.
const linucbMaxArms = 2048

// LinUCB is a linear contextual bandit over a discretized allocation
// simplex × quality-ratio grid. Each arm is a full configuration
// [c_1..c_N, x]; its feature vector is the configuration itself plus a bias
// term, the reward is the negated cost, and the ridge design matrix is
// maintained as an inverse via Sherman–Morrison so arm scoring is O(d²)
// per arm with d = N+2.
//
// LinUCB is durable: (A⁻¹, b) is a deterministic, RNG-free function of the
// observation history, so an OptimizerState (RNG position + history) fully
// determines the policy and restore is a replay of Observe calls.
type LinUCB struct {
	dom bo.Domain
	cfg bo.Config
	rng *sim.RNG

	arms [][]float64 // discretized configurations, fixed at construction
	dim  int         // feature dimension: Dim()+1 for the bias term

	ainv []float64 // d×d row-major inverse design matrix, starts at I
	bvec []float64 // d reward-weighted feature sums

	xs [][]float64
	ys []float64

	theta []float64 // scratch: A⁻¹ b
	fbuf  []float64 // scratch: arm features
	abuf  []float64 // scratch: A⁻¹ f
}

// NewLinUCB builds the bandit over dom. cfg.InitSamples random draws warm
// the design matrix before UCB takes over; other GP-specific cfg fields are
// ignored.
func NewLinUCB(dom bo.Domain, cfg bo.Config, rng *sim.RNG) (*LinUCB, error) {
	if err := dom.Validate(); err != nil {
		return nil, err
	}
	if cfg.InitSamples < 1 {
		return nil, fmt.Errorf("policies: linucb InitSamples must be >= 1, got %d", cfg.InitSamples)
	}
	if rng == nil {
		return nil, fmt.Errorf("policies: linucb nil RNG")
	}
	d := dom.Dim() + 1
	l := &LinUCB{
		dom:   dom,
		cfg:   cfg,
		rng:   rng,
		arms:  buildArms(dom),
		dim:   d,
		ainv:  make([]float64, d*d),
		bvec:  make([]float64, d),
		theta: make([]float64, d),
		fbuf:  make([]float64, d),
		abuf:  make([]float64, d),
	}
	for i := 0; i < d; i++ {
		l.ainv[i*d+i] = 1 // ridge prior A = λI with λ=1
	}
	return l, nil
}

// buildArms enumerates the discretized action set: every composition of G
// into N parts (proportions k_i/G) crossed with the ratio grid, in
// deterministic lexicographic order. G is the finest granularity whose arm
// count fits linucbMaxArms.
func buildArms(dom bo.Domain) [][]float64 {
	g := 32
	for g > 1 && compositionCount(g, dom.N)*linucbRatioGridSize > linucbMaxArms {
		g--
	}
	var arms [][]float64
	comp := make([]int, dom.N)
	var rec func(idx, left int)
	rec = func(idx, left int) {
		if idx == dom.N-1 {
			comp[idx] = left
			for k := 0; k < linucbRatioGridSize; k++ {
				arm := make([]float64, dom.Dim())
				for i, c := range comp {
					arm[i] = float64(c) / float64(g)
				}
				arm[dom.N] = ratioGridValue(dom.RMin, k, linucbRatioGridSize)
				arms = append(arms, arm)
			}
			return
		}
		for c := 0; c <= left; c++ {
			comp[idx] = c
			rec(idx+1, left-c)
		}
	}
	rec(0, g)
	return arms
}

// compositionCount returns C(g+n-1, n-1), the number of ways to write g as
// an ordered sum of n non-negative integers, saturating to avoid overflow.
func compositionCount(g, n int) int {
	count := 1
	for i := 1; i < n; i++ {
		count = count * (g + i) / i
		if count > linucbMaxArms*linucbMaxArms {
			return count
		}
	}
	return count
}

// ratioGridValue returns the k-th of size evenly spaced ratios in [rmin, 1].
func ratioGridValue(rmin float64, k, size int) float64 {
	if size == 1 {
		return 1
	}
	return rmin + (1-rmin)*float64(k)/float64(size-1)
}

// Next suggests uniformly at random during warm-up, then the UCB-maximizing
// arm (ties broken by lowest arm index, so scans are order-stable).
func (l *LinUCB) Next() ([]float64, error) {
	if len(l.xs) < l.cfg.InitSamples {
		return l.dom.Sample(l.rng), nil
	}
	l.solveTheta()
	bestIdx := 0
	bestScore := math.Inf(-1)
	for i, arm := range l.arms {
		if s := l.ucb(arm); s > bestScore {
			bestScore = s
			bestIdx = i
		}
	}
	return append([]float64(nil), l.arms[bestIdx]...), nil
}

// Observe records the measured cost and folds the point's features into the
// ridge design via Sherman–Morrison. The reward is the negated cost, so
// argmax-UCB minimizes cost.
func (l *LinUCB) Observe(p []float64, cost float64) error {
	if !l.dom.Contains(p) {
		return fmt.Errorf("policies: linucb observed point %v outside domain", p)
	}
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		return fmt.Errorf("policies: linucb non-finite cost %v", cost)
	}
	l.xs = append(l.xs, append([]float64(nil), p...))
	l.ys = append(l.ys, cost)

	f := l.features(p)
	// Sherman–Morrison: A⁻¹ ← A⁻¹ − (A⁻¹ f)(A⁻¹ f)ᵀ / (1 + fᵀ A⁻¹ f).
	af := l.matVec(l.abuf, f)
	denom := 1.0
	for i, v := range f {
		denom += v * af[i]
	}
	d := l.dim
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			l.ainv[i*d+j] -= af[i] * af[j] / denom
		}
	}
	for i, v := range f {
		l.bvec[i] += -cost * v
	}
	return nil
}

// Observations returns the number of recorded (point, cost) pairs.
func (l *LinUCB) Observations() int { return len(l.xs) }

// Best returns the lowest-cost observed point.
func (l *LinUCB) Best() ([]float64, float64, bool) {
	return bestOf(l.xs, l.ys)
}

// ExportState deep-copies the bandit's resumable state. The design matrix
// is not exported: it is a deterministic function of the history, so
// restore replays Observe instead — the snapshot stays policy-agnostic.
func (l *LinUCB) ExportState() *bo.OptimizerState {
	return historyState(l.rng, l.xs, l.ys)
}

// restoreLinUCB rebuilds a bandit by replaying the exported history (the
// Observe path consumes no randomness, so replay is exact) and restoring
// the RNG position.
func restoreLinUCB(dom bo.Domain, cfg bo.Config, st *bo.OptimizerState) (*LinUCB, error) {
	if st == nil {
		return nil, fmt.Errorf("policies: nil linucb state")
	}
	l, err := NewLinUCB(dom, cfg, sim.NewRNG(st.RNGState))
	if err != nil {
		return nil, err
	}
	if err := replayHistory(l, st); err != nil {
		return nil, err
	}
	return l, nil
}

// ucb scores an arm: θᵀf + α√(fᵀ A⁻¹ f).
func (l *LinUCB) ucb(arm []float64) float64 {
	f := l.features(arm)
	af := l.matVec(l.abuf, f)
	mean, spread := 0.0, 0.0
	for i, v := range f {
		mean += l.theta[i] * v
		spread += v * af[i]
	}
	if spread < 0 {
		spread = 0 // guard against rounding drift in the maintained inverse
	}
	return mean + linucbAlpha*math.Sqrt(spread)
}

// features writes the point's feature vector [c_1..c_N, x, 1] into the
// shared scratch buffer.
func (l *LinUCB) features(p []float64) []float64 {
	copy(l.fbuf, p)
	l.fbuf[l.dim-1] = 1
	return l.fbuf
}

// matVec writes A⁻¹ v into dst.
func (l *LinUCB) matVec(dst, v []float64) []float64 {
	d := l.dim
	for i := 0; i < d; i++ {
		s := 0.0
		row := l.ainv[i*d : (i+1)*d]
		for j, rv := range row {
			s += rv * v[j]
		}
		dst[i] = s
	}
	return dst
}

// solveTheta refreshes θ = A⁻¹ b.
func (l *LinUCB) solveTheta() {
	d := l.dim
	for i := 0; i < d; i++ {
		s := 0.0
		row := l.ainv[i*d : (i+1)*d]
		for j, rv := range row {
			s += rv * l.bvec[j]
		}
		l.theta[i] = s
	}
}

// bestOf is the shared lowest-cost scan (first minimum wins, matching the
// GP optimizer's tie-break).
func bestOf(xs [][]float64, ys []float64) ([]float64, float64, bool) {
	if len(ys) == 0 {
		return nil, 0, false
	}
	bi := 0
	for i, y := range ys {
		if y < ys[bi] {
			bi = i
		}
	}
	return append([]float64(nil), xs[bi]...), ys[bi], true
}

// historyState packs (RNG position, history) into the policy-agnostic
// OptimizerState; the GP fields stay zero.
func historyState(rng *sim.RNG, xs [][]float64, ys []float64) *bo.OptimizerState {
	st := &bo.OptimizerState{
		RNGState: rng.State(),
		X:        make([][]float64, len(xs)),
		Y:        append([]float64(nil), ys...),
	}
	for i, x := range xs {
		st.X[i] = append([]float64(nil), x...)
	}
	return st
}

// replayHistory feeds an exported history back through a policy's Observe
// path, validating as the live path would.
func replayHistory(p bo.Policy, st *bo.OptimizerState) error {
	if len(st.X) != len(st.Y) {
		return fmt.Errorf("policies: state has %d points but %d costs", len(st.X), len(st.Y))
	}
	for i, x := range st.X {
		if err := p.Observe(x, st.Y[i]); err != nil {
			return fmt.Errorf("policies: replaying observation %d: %w", i, err)
		}
	}
	return nil
}
