package policies

import (
	"fmt"
	"math"

	"github.com/mar-hbo/hbo/internal/bo"
	"github.com/mar-hbo/hbo/internal/sim"
)

// thompsonPriorSigma is the prior standard deviation of each arm's cost
// estimate. Costs on the HBO objective land in low single digits, so a
// unit prior keeps unexplored arms competitive for a few rounds without
// swamping observed means forever.
const thompsonPriorSigma = 1.0

// Thompson is Gaussian Thompson sampling over the same discretized
// allocation-simplex × quality-ratio arm set LinUCB races on: each arm
// keeps a conjugate-normal posterior over its cost (known-variance model,
// prior mean = the global observed mean, prior weight = one pseudo-
// observation); Next samples every posterior once and plays the arm with
// the lowest sampled cost. Warm-up draws uniformly from the domain until
// InitSamples observations arrive, mirroring the other entrants.
//
// Thompson is durable: posterior statistics are an RNG-free function of
// the observation history, so an OptimizerState (RNG position + history)
// fully determines the policy and restore is a replay of Observe calls.
type Thompson struct {
	dom bo.Domain
	cfg bo.Config
	rng *sim.RNG

	arms   [][]float64 // discretized configurations, fixed at construction
	counts []int       // per-arm observation counts
	sums   []float64   // per-arm cost sums

	xs [][]float64
	ys []float64
}

// NewThompson builds the sampler over dom. cfg.InitSamples bounds the
// uniform warm-up; GP-specific cfg fields are ignored.
func NewThompson(dom bo.Domain, cfg bo.Config, rng *sim.RNG) (*Thompson, error) {
	if err := dom.Validate(); err != nil {
		return nil, err
	}
	if cfg.InitSamples < 1 {
		return nil, fmt.Errorf("policies: thompson InitSamples must be >= 1, got %d", cfg.InitSamples)
	}
	if rng == nil {
		return nil, fmt.Errorf("policies: thompson nil RNG")
	}
	arms := buildArms(dom)
	return &Thompson{
		dom:    dom,
		cfg:    cfg,
		rng:    rng,
		arms:   arms,
		counts: make([]int, len(arms)),
		sums:   make([]float64, len(arms)),
	}, nil
}

// Next suggests uniformly at random during warm-up, then samples every
// arm's posterior and plays the lowest draw (strict minimum, so ties keep
// the lowest arm index).
func (t *Thompson) Next() ([]float64, error) {
	if len(t.xs) < t.cfg.InitSamples {
		return t.dom.Sample(t.rng), nil
	}
	prior := t.globalMean()
	bestIdx := 0
	bestDraw := math.Inf(1)
	for i := range t.arms {
		n := float64(t.counts[i])
		mean := (prior + t.sums[i]) / (n + 1)
		sigma := thompsonPriorSigma / math.Sqrt(n+1)
		if draw := mean + sigma*t.rng.Norm(); draw < bestDraw {
			bestDraw = draw
			bestIdx = i
		}
	}
	return append([]float64(nil), t.arms[bestIdx]...), nil
}

// Observe records the measured cost against the nearest arm. The update
// consumes no randomness, so snapshot restores replay it exactly.
func (t *Thompson) Observe(p []float64, cost float64) error {
	if !t.dom.Contains(p) {
		return fmt.Errorf("policies: thompson observed point %v outside domain", p)
	}
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		return fmt.Errorf("policies: thompson non-finite cost %v", cost)
	}
	t.xs = append(t.xs, append([]float64(nil), p...))
	t.ys = append(t.ys, cost)
	a := t.nearestArm(p)
	t.counts[a]++
	t.sums[a] += cost
	return nil
}

// Observations returns the number of recorded (point, cost) pairs.
func (t *Thompson) Observations() int { return len(t.xs) }

// Best returns the lowest-cost observed point.
func (t *Thompson) Best() ([]float64, float64, bool) {
	return bestOf(t.xs, t.ys)
}

// ExportState deep-copies the sampler's resumable state (RNG position +
// history; posteriors rebuild by replay, keeping the snapshot
// policy-agnostic).
func (t *Thompson) ExportState() *bo.OptimizerState {
	return historyState(t.rng, t.xs, t.ys)
}

// restoreThompson rebuilds a sampler by replaying the exported history and
// restoring the RNG position.
func restoreThompson(dom bo.Domain, cfg bo.Config, st *bo.OptimizerState) (*Thompson, error) {
	if st == nil {
		return nil, fmt.Errorf("policies: nil thompson state")
	}
	t, err := NewThompson(dom, cfg, sim.NewRNG(st.RNGState))
	if err != nil {
		return nil, err
	}
	if err := replayHistory(t, st); err != nil {
		return nil, err
	}
	return t, nil
}

// globalMean is the prior mean: the average of every observed cost.
func (t *Thompson) globalMean() float64 {
	sum := 0.0
	for _, y := range t.ys {
		sum += y
	}
	return sum / float64(len(t.ys))
}

// nearestArm maps a point to the closest arm by squared L2 distance,
// strict minimum so ties keep the lowest arm index.
func (t *Thompson) nearestArm(p []float64) int {
	bestIdx := 0
	bestDist := math.Inf(1)
	for i, arm := range t.arms {
		d := 0.0
		for k, v := range arm {
			diff := p[k] - v
			d += diff * diff
		}
		if d < bestDist {
			bestDist = d
			bestIdx = i
		}
	}
	return bestIdx
}

var _ bo.DurablePolicy = (*Thompson)(nil)
