package policies

import (
	"fmt"
	"math"

	"github.com/mar-hbo/hbo/internal/bo"
	"github.com/mar-hbo/hbo/internal/sim"
)

// Random is pure random search: every suggestion is an independent uniform
// draw from the domain (Dirichlet(1) on the simplex, uniform ratio). It is
// the arena's floor — any policy that cannot beat it is not learning — and
// together with the oracle enumeration in internal/experiments it brackets
// the achievable cost range. Trivially durable: its entire state is the
// RNG position (the history matters only for Best).
type Random struct {
	dom bo.Domain
	rng *sim.RNG

	xs [][]float64
	ys []float64
}

// NewRandom builds the policy over dom. cfg is accepted for registry
// uniformity; random search has no parameters.
func NewRandom(dom bo.Domain, _ bo.Config, rng *sim.RNG) (*Random, error) {
	if err := dom.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("policies: random nil RNG")
	}
	return &Random{dom: dom, rng: rng}, nil
}

// Next draws a fresh uniform configuration.
func (r *Random) Next() ([]float64, error) {
	return r.dom.Sample(r.rng), nil
}

// Observe records the measured cost (random search only uses it for Best).
func (r *Random) Observe(p []float64, cost float64) error {
	if !r.dom.Contains(p) {
		return fmt.Errorf("policies: random observed point %v outside domain", p)
	}
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		return fmt.Errorf("policies: random non-finite cost %v", cost)
	}
	r.xs = append(r.xs, append([]float64(nil), p...))
	r.ys = append(r.ys, cost)
	return nil
}

// Observations returns the number of recorded (point, cost) pairs.
func (r *Random) Observations() int { return len(r.xs) }

// Best returns the lowest-cost observed point.
func (r *Random) Best() ([]float64, float64, bool) {
	return bestOf(r.xs, r.ys)
}

// ExportState deep-copies the resumable state.
func (r *Random) ExportState() *bo.OptimizerState {
	return historyState(r.rng, r.xs, r.ys)
}

// restoreRandom rebuilds the policy from an exported state.
func restoreRandom(dom bo.Domain, cfg bo.Config, st *bo.OptimizerState) (*Random, error) {
	if st == nil {
		return nil, fmt.Errorf("policies: nil random state")
	}
	r, err := NewRandom(dom, cfg, sim.NewRNG(st.RNGState))
	if err != nil {
		return nil, err
	}
	if err := replayHistory(r, st); err != nil {
		return nil, err
	}
	return r, nil
}

// Interface assertions: LinUCB and Random are durable, CMA-ES is
// deliberately only a Policy (its evolution paths don't fit an
// OptimizerState).
var (
	_ bo.DurablePolicy = (*LinUCB)(nil)
	_ bo.DurablePolicy = (*Random)(nil)
	_ bo.Policy        = (*CMAES)(nil)
)
