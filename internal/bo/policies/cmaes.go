package policies

import (
	"fmt"
	"math"
	"sort"

	"github.com/mar-hbo/hbo/internal/bo"
	"github.com/mar-hbo/hbo/internal/sim"
)

// CMAES is a separable (diagonal-covariance) CMA-ES over the joint domain,
// following Ros & Hansen's sep-CMA-ES: full covariance adaptation is
// overkill for the HBO decision space (a handful of dimensions, tens of
// evaluations) and the diagonal restriction keeps every update O(d).
//
// The ask/tell shape is adapted to the Policy contract: Next pops the next
// phenotype of the current generation (sampling it on demand from the
// seeded RNG), Observe assigns fitness to outstanding phenotypes FIFO, and
// the distribution update fires when a full generation of λ samples has
// been scored. Observations that arrive with no outstanding phenotype
// (e.g. a re-admission replay into a fresh instance) only extend the
// history — the evolution state restarts from the replayed best, which is
// exactly the ephemeral-policy contract: CMA-ES carries evolution paths an
// OptimizerState cannot express, so it deliberately does NOT implement
// bo.DurablePolicy.
type CMAES struct {
	dom bo.Domain
	cfg bo.Config
	rng *sim.RNG

	xs [][]float64
	ys []float64

	// Strategy parameters, fixed at construction for d = dom.Dim().
	lambda  int
	mu      int
	weights []float64
	mueff   float64
	csigma  float64
	dsigma  float64
	cc      float64
	c1      float64
	cmu     float64
	chiN    float64

	// Evolving distribution state; initialized lazily at the first
	// post-warm-up Next from the best observed point.
	started bool
	mean    []float64
	sigma   float64
	diagC   []float64 // diagonal covariance
	ps      []float64 // conjugate evolution path (step size)
	pc      []float64 // evolution path (covariance)
	gen     int       // completed generation count

	// Current generation: phenotypes issued by Next awaiting fitness,
	// scored FIFO by Observe.
	pending []cmaSample
	scored  int
}

// cmaSample is one issued phenotype and, once Observe assigns it, its cost.
type cmaSample struct {
	phen     []float64
	cost     float64
	observed bool
}

// NewCMAES builds the strategy over dom. cfg.InitSamples uniform draws seed
// the history before the distribution starts from the best of them.
func NewCMAES(dom bo.Domain, cfg bo.Config, rng *sim.RNG) (*CMAES, error) {
	if err := dom.Validate(); err != nil {
		return nil, err
	}
	if cfg.InitSamples < 1 {
		return nil, fmt.Errorf("policies: cmaes InitSamples must be >= 1, got %d", cfg.InitSamples)
	}
	if rng == nil {
		return nil, fmt.Errorf("policies: cmaes nil RNG")
	}
	d := float64(dom.Dim())
	lambda := 4 + int(3*math.Log(d))
	mu := lambda / 2
	weights := make([]float64, mu)
	sum := 0.0
	for i := range weights {
		weights[i] = math.Log(float64(mu)+0.5) - math.Log(float64(i+1))
		sum += weights[i]
	}
	sqsum := 0.0
	for i := range weights {
		weights[i] /= sum
		sqsum += weights[i] * weights[i]
	}
	mueff := 1 / sqsum
	csigma := (mueff + 2) / (d + mueff + 5)
	c1 := 2 / ((d+1.3)*(d+1.3) + mueff) * (d + 2) / 3 // sep-CMA-ES ×(d+2)/3 rate boost
	cmu := math.Min(1-c1, 2*(mueff-2+1/mueff)/((d+2)*(d+2)+mueff)*(d+2)/3)
	return &CMAES{
		dom:     dom,
		cfg:     cfg,
		rng:     rng,
		lambda:  lambda,
		mu:      mu,
		weights: weights,
		mueff:   mueff,
		csigma:  csigma,
		dsigma:  1 + 2*math.Max(0, math.Sqrt((mueff-1)/(d+1))-1) + csigma,
		cc:      (4 + mueff/d) / (d + 4 + 2*mueff/d),
		c1:      c1,
		cmu:     cmu,
		chiN:    math.Sqrt(d) * (1 - 1/(4*d) + 1/(21*d*d)),
	}, nil
}

// Next suggests uniformly at random during warm-up, then samples the next
// phenotype of the current generation from N(m, σ²·diag(C)) projected onto
// the domain.
func (c *CMAES) Next() ([]float64, error) {
	if len(c.xs) < c.cfg.InitSamples {
		return c.dom.Sample(c.rng), nil
	}
	if !c.started {
		c.start()
	}
	d := c.dom.Dim()
	phen := make([]float64, d)
	for k := 0; k < d; k++ {
		phen[k] = c.mean[k] + c.sigma*math.Sqrt(c.diagC[k])*c.rng.Norm()
	}
	c.dom.Project(phen)
	c.pending = append(c.pending, cmaSample{phen: append([]float64(nil), phen...)})
	return phen, nil
}

// start initializes the distribution from the warm-up's best observation.
func (c *CMAES) start() {
	d := c.dom.Dim()
	best, _, ok := bestOf(c.xs, c.ys)
	if !ok {
		best = make([]float64, d)
		for i := 0; i < c.dom.N; i++ {
			best[i] = 1 / float64(c.dom.N)
		}
		best[c.dom.N] = (c.dom.RMin + 1) / 2
	}
	c.mean = best
	c.sigma = 0.3
	c.diagC = make([]float64, d)
	for k := range c.diagC {
		c.diagC[k] = 1
	}
	c.ps = make([]float64, d)
	c.pc = make([]float64, d)
	c.started = true
}

// Observe records the cost and assigns it FIFO to the oldest unscored
// outstanding phenotype; a full generation triggers the distribution
// update. Observations with nothing outstanding only extend the history.
func (c *CMAES) Observe(p []float64, cost float64) error {
	if !c.dom.Contains(p) {
		return fmt.Errorf("policies: cmaes observed point %v outside domain", p)
	}
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		return fmt.Errorf("policies: cmaes non-finite cost %v", cost)
	}
	c.xs = append(c.xs, append([]float64(nil), p...))
	c.ys = append(c.ys, cost)
	if c.scored < len(c.pending) {
		c.pending[c.scored].cost = cost
		c.pending[c.scored].observed = true
		c.scored++
		if c.scored >= c.lambda {
			c.update()
		}
	}
	return nil
}

// Observations returns the number of recorded (point, cost) pairs.
func (c *CMAES) Observations() int { return len(c.xs) }

// Best returns the lowest-cost observed point.
func (c *CMAES) Best() ([]float64, float64, bool) {
	return bestOf(c.xs, c.ys)
}

// update performs one sep-CMA-ES generation step over the λ scored
// phenotypes: rank by cost (ties broken by issue order), recombine the
// mean from the top μ, and adapt the evolution paths, the step size, and
// the diagonal covariance.
func (c *CMAES) update() {
	d := c.dom.Dim()
	scored := c.pending[:c.lambda]
	order := make([]int, c.lambda)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return scored[order[a]].cost < scored[order[b]].cost
	})

	// Effective steps are measured from the evaluated (projected)
	// phenotypes, not the raw genotypes, so boundary clipping feeds back
	// into the distribution consistently with what was scored.
	oldMean := append([]float64(nil), c.mean...)
	yw := make([]float64, d)
	for i := 0; i < c.mu; i++ {
		s := scored[order[i]]
		for k := 0; k < d; k++ {
			yw[k] += c.weights[i] * (s.phen[k] - oldMean[k]) / c.sigma
		}
	}
	for k := 0; k < d; k++ {
		c.mean[k] = oldMean[k] + c.sigma*yw[k]
	}

	psNorm := 0.0
	for k := 0; k < d; k++ {
		c.ps[k] = (1-c.csigma)*c.ps[k] +
			math.Sqrt(c.csigma*(2-c.csigma)*c.mueff)*yw[k]/math.Sqrt(c.diagC[k])
		psNorm += c.ps[k] * c.ps[k]
	}
	psNorm = math.Sqrt(psNorm)
	c.gen++
	hsig := 0.0
	if psNorm/math.Sqrt(1-math.Pow(1-c.csigma, 2*float64(c.gen))) <
		(1.4+2/float64(d+1))*c.chiN {
		hsig = 1
	}
	for k := 0; k < d; k++ {
		c.pc[k] = (1-c.cc)*c.pc[k] + hsig*math.Sqrt(c.cc*(2-c.cc)*c.mueff)*yw[k]
	}
	for k := 0; k < d; k++ {
		rankMu := 0.0
		for i := 0; i < c.mu; i++ {
			y := (scored[order[i]].phen[k] - oldMean[k]) / c.sigma
			rankMu += c.weights[i] * y * y
		}
		c.diagC[k] = (1-c.c1-c.cmu)*c.diagC[k] +
			c.c1*(c.pc[k]*c.pc[k]+(1-hsig)*c.cc*(2-c.cc)*c.diagC[k]) +
			c.cmu*rankMu
		if c.diagC[k] < 1e-12 {
			c.diagC[k] = 1e-12
		}
	}
	c.sigma *= math.Exp(c.csigma / c.dsigma * (psNorm/c.chiN - 1))
	if c.sigma < 1e-8 {
		c.sigma = 1e-8
	}
	if c.sigma > 10 {
		c.sigma = 10
	}

	// Carry any phenotypes issued past the generation boundary forward.
	c.pending = append(c.pending[:0], c.pending[c.lambda:]...)
	c.scored -= c.lambda
}
