package policies

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/mar-hbo/hbo/internal/bo"
	"github.com/mar-hbo/hbo/internal/sim"
)

// testConfig shrinks the GP search budget so the battery's ≥1000 cases stay
// fast; non-GP entrants only read InitSamples from it.
func testConfig() bo.Config {
	cfg := bo.DefaultConfig()
	cfg.InitSamples = 3
	cfg.Candidates = 32
	cfg.RefineSteps = 5
	return cfg
}

// testDomain derives a small but varied domain from quick's raw bytes.
func testDomain(nRaw, rminRaw uint8) bo.Domain {
	return bo.Domain{
		N:    1 + int(nRaw%5),
		RMin: float64(rminRaw%90) / 100,
	}
}

// syntheticCost is the deterministic objective the battery evaluates
// suggestions against: smooth, finite, and point-dependent so learning
// policies have something to chew on.
func syntheticCost(p []float64) float64 {
	c := 0.0
	for i, v := range p {
		c += float64(i+1) * v * v
	}
	return c + 0.25*p[len(p)-1]
}

const propertyRounds = 12

// TestPolicySuggestionsStayInDomain: every suggestion from every entrant
// lies on the allocation simplex with the ratio inside [RMin, 1], across
// random seeds and domain shapes. 4 policies × 100 cases × 12 rounds.
func TestPolicySuggestionsStayInDomain(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(seed uint64, nRaw, rminRaw uint8) bool {
				dom := testDomain(nRaw, rminRaw)
				pol, err := New(name, dom, testConfig(), sim.NewRNG(seed))
				if err != nil {
					t.Fatalf("New(%s): %v", name, err)
				}
				for i := 0; i < propertyRounds; i++ {
					p, err := pol.Next()
					if err != nil {
						t.Fatalf("Next %d: %v", i, err)
					}
					if !dom.Contains(p) {
						t.Logf("suggestion %d = %v outside %+v", i, p, dom)
						return false
					}
					if err := pol.Observe(p, syntheticCost(p)); err != nil {
						t.Fatalf("Observe %d: %v", i, err)
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPolicyObserveNeverMutatesSuggestions: a slice returned by Next keeps
// its exact bits through arbitrarily many later Observe/Next calls — the
// caller owns it.
func TestPolicyObserveNeverMutatesSuggestions(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(seed uint64, nRaw, rminRaw uint8) bool {
				dom := testDomain(nRaw, rminRaw)
				pol, err := New(name, dom, testConfig(), sim.NewRNG(seed))
				if err != nil {
					t.Fatalf("New(%s): %v", name, err)
				}
				var issued [][]float64
				var snap [][]uint64
				for i := 0; i < propertyRounds; i++ {
					p, err := pol.Next()
					if err != nil {
						t.Fatalf("Next %d: %v", i, err)
					}
					bits := make([]uint64, len(p))
					for j, v := range p {
						bits[j] = math.Float64bits(v)
					}
					issued = append(issued, p)
					snap = append(snap, bits)
					if err := pol.Observe(p, syntheticCost(p)); err != nil {
						t.Fatalf("Observe %d: %v", i, err)
					}
				}
				for i, p := range issued {
					for j, v := range p {
						if math.Float64bits(v) != snap[i][j] {
							t.Logf("suggestion %d mutated at dim %d", i, j)
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPolicyReseedReplaysIdentically: two instances built from the same
// seed and fed the same observations emit bit-identical suggestion streams.
func TestPolicyReseedReplaysIdentically(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(seed uint64, nRaw, rminRaw uint8) bool {
				dom := testDomain(nRaw, rminRaw)
				a, err := New(name, dom, testConfig(), sim.NewRNG(seed))
				if err != nil {
					t.Fatalf("New(%s): %v", name, err)
				}
				b, err := New(name, dom, testConfig(), sim.NewRNG(seed))
				if err != nil {
					t.Fatalf("New(%s): %v", name, err)
				}
				for i := 0; i < propertyRounds; i++ {
					pa, err := a.Next()
					if err != nil {
						t.Fatalf("a.Next %d: %v", i, err)
					}
					pb, err := b.Next()
					if err != nil {
						t.Fatalf("b.Next %d: %v", i, err)
					}
					if !samePoint(pa, pb) {
						t.Logf("suggestion %d diverged: %v vs %v", i, pa, pb)
						return false
					}
					cost := syntheticCost(pa)
					if err := a.Observe(pa, cost); err != nil {
						t.Fatalf("a.Observe %d: %v", i, err)
					}
					if err := b.Observe(pb, cost); err != nil {
						t.Fatalf("b.Observe %d: %v", i, err)
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// samePoint compares two suggestions bitwise — the determinism contract is
// bit-identity, not approximate equality.
func samePoint(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestDurableRoundTrip drives each durable policy, snapshots it mid-stream,
// restores through the registry, and requires the restored instance to
// continue bit-identically with the uninterrupted original.
func TestDurableRoundTrip(t *testing.T) {
	dom := bo.Domain{N: 3, RMin: 0.1}
	for _, name := range Names() {
		if !Durable(name) {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			pol, err := New(name, dom, testConfig(), sim.NewRNG(99))
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			for i := 0; i < 7; i++ {
				p, err := pol.Next()
				if err != nil {
					t.Fatalf("Next %d: %v", i, err)
				}
				if err := pol.Observe(p, syntheticCost(p)); err != nil {
					t.Fatalf("Observe %d: %v", i, err)
				}
			}
			dp, ok := pol.(bo.DurablePolicy)
			if !ok {
				t.Fatalf("%s marked durable but does not implement bo.DurablePolicy", name)
			}
			restored, err := Restore(name, dom, testConfig(), dp.ExportState())
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if got, want := restored.Observations(), pol.Observations(); got != want {
				t.Fatalf("restored observations = %d, want %d", got, want)
			}
			for i := 0; i < 5; i++ {
				want, err := pol.Next()
				if err != nil {
					t.Fatalf("original Next: %v", err)
				}
				got, err := restored.Next()
				if err != nil {
					t.Fatalf("restored Next: %v", err)
				}
				if !samePoint(got, want) {
					t.Fatalf("post-restore suggestion %d = %v, want bit-identical %v", i, got, want)
				}
				cost := syntheticCost(want)
				if err := pol.Observe(want, cost); err != nil {
					t.Fatalf("original Observe: %v", err)
				}
				if err := restored.Observe(got, cost); err != nil {
					t.Fatalf("restored Observe: %v", err)
				}
			}
		})
	}
}

// TestEphemeralPolicyRefusesRestore: CMA-ES must not pretend to restore.
func TestEphemeralPolicyRefusesRestore(t *testing.T) {
	if Durable(NameCMAES) {
		t.Fatal("cmaes must be marked ephemeral")
	}
	if _, err := Restore(NameCMAES, bo.Domain{N: 3, RMin: 0.1}, testConfig(), &bo.OptimizerState{}); err == nil {
		t.Fatal("Restore(cmaes) succeeded, want ephemeral error")
	}
	if _, ok := interface{}(&CMAES{}).(bo.DurablePolicy); ok {
		t.Fatal("CMAES implements DurablePolicy; its evolution paths cannot round-trip an OptimizerState")
	}
}

// TestRegistry pins the registry surface: name set, aliasing, validation.
func TestRegistry(t *testing.T) {
	want := []string{"cmaes", "gp-ei", "linucb", "random", "thompson"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, name := range append(want, "") {
		if !Valid(name) {
			t.Errorf("Valid(%q) = false", name)
		}
	}
	if Valid("nope") {
		t.Error("Valid(nope) = true")
	}
	if Canonical(NameGPEI) != "" || Canonical(NameLinUCB) != NameLinUCB {
		t.Error("Canonical aliasing broken")
	}
	if _, err := New("nope", bo.Domain{N: 2, RMin: 0.1}, testConfig(), sim.NewRNG(1)); err == nil ||
		!strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("New(nope) err = %v, want unknown policy", err)
	}
	// The GP-EI default resolves through both spellings to the same type.
	a, err := New("", bo.Domain{N: 2, RMin: 0.1}, testConfig(), sim.NewRNG(1))
	if err != nil {
		t.Fatalf("New(\"\"): %v", err)
	}
	if _, ok := a.(*bo.Optimizer); !ok {
		t.Fatalf("New(\"\") = %T, want *bo.Optimizer", a)
	}
}

// TestGPEIBitIdenticalThroughRegistry: the registry-constructed GP-EI is
// the same code path as a direct bo.NewOptimizer — the Policy extraction
// must not perturb a single bit of the reference stream.
func TestGPEIBitIdenticalThroughRegistry(t *testing.T) {
	dom := bo.Domain{N: 3, RMin: 0.1}
	cfg := testConfig()
	viaRegistry, err := New(NameGPEI, dom, cfg, sim.NewRNG(7))
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	direct, err := bo.NewOptimizer(dom, cfg, sim.NewRNG(7))
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	for i := 0; i < 10; i++ {
		pr, err := viaRegistry.Next()
		if err != nil {
			t.Fatalf("registry Next: %v", err)
		}
		pd, err := direct.Next()
		if err != nil {
			t.Fatalf("direct Next: %v", err)
		}
		if !samePoint(pr, pd) {
			t.Fatalf("suggestion %d: registry %v != direct %v", i, pr, pd)
		}
		cost := syntheticCost(pr)
		if err := viaRegistry.Observe(pr, cost); err != nil {
			t.Fatal(err)
		}
		if err := direct.Observe(pd, cost); err != nil {
			t.Fatal(err)
		}
	}
}
