package core_test

import (
	"testing"

	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
)

func sessionConfig(mode core.ActivationMode) core.SessionConfig {
	hbo := core.DefaultConfig()
	// Keep sessions quick: fewer iterations per activation.
	hbo.InitSamples = 3
	hbo.Iterations = 4
	hbo.PeriodMS = 1000
	cfg := core.SessionConfig{HBO: hbo, Mode: mode}
	if mode == core.Periodic {
		cfg.PeriodicIntervalMS = 30000
	}
	return cfg
}

func TestSessionActivatesOnFirstObject(t *testing.T) {
	spec := scenario.SC2CF2()
	spec.StartEmpty = true
	built := buildScenario(t, spec, 11)
	s, err := core.NewSession(built.Runtime, sessionConfig(core.EventBased), sim.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	// No objects yet: stepping must not activate.
	if err := s.RunFor(6000); err != nil {
		t.Fatal(err)
	}
	if len(s.Activations()) != 0 {
		t.Fatalf("session activated with empty scene: %d", len(s.Activations()))
	}
	// Place the first object: the next step must trigger the paper's
	// first-placement activation.
	if _, err := built.Scene.Place("cabin", 1, 1.5); err != nil {
		t.Fatal(err)
	}
	built.Runtime.SyncRenderLoad()
	if err := s.RunFor(4000); err != nil {
		t.Fatal(err)
	}
	if len(s.Activations()) != 1 {
		t.Fatalf("activations after first object = %d, want 1", len(s.Activations()))
	}
	// Steady state afterwards: the policy should be quiet. Measurement
	// noise makes an occasional false trigger possible (the paper tunes the
	// thresholds empirically to balance exactly this), so tolerate at most
	// a couple of re-activations over 20 s but not periodic-like churn.
	before := len(s.Activations())
	if err := s.RunFor(20000); err != nil {
		t.Fatal(err)
	}
	if extra := len(s.Activations()) - before; extra > 2 {
		t.Fatalf("steady scene re-activated %d times in 20s, want <= 2", extra)
	}
	if len(s.Samples()) == 0 {
		t.Fatal("session recorded no reward samples")
	}
}

func TestSessionReactsToHeavyObjectAddition(t *testing.T) {
	spec := scenario.SC1CF1()
	spec.StartEmpty = true
	built := buildScenario(t, spec, 13)
	if _, err := built.Scene.Place("apricot", 1, 1.5); err != nil {
		t.Fatal(err)
	}
	built.Runtime.SyncRenderLoad()
	s, err := core.NewSession(built.Runtime, sessionConfig(core.EventBased), sim.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(15000); err != nil { // first activation on existing object
		t.Fatal(err)
	}
	n := len(s.Activations())
	if n == 0 {
		t.Fatal("no initial activation")
	}
	// Add the heavy bike (178k triangles): reward should collapse and the
	// monitor should re-activate.
	if _, err := built.Scene.Place("bike", 1, 1.5); err != nil {
		t.Fatal(err)
	}
	built.Runtime.SyncRenderLoad()
	if err := s.RunFor(30000); err != nil {
		t.Fatal(err)
	}
	if len(s.Activations()) <= n {
		t.Fatalf("heavy object addition did not trigger activation (%d)", len(s.Activations()))
	}
}

func TestSessionPeriodicMode(t *testing.T) {
	built := buildScenario(t, scenario.SC2CF2(), 17)
	cfg := sessionConfig(core.Periodic)
	s, err := core.NewSession(built.Runtime, cfg, sim.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(95000); err != nil {
		t.Fatal(err)
	}
	// Periodic activations at ~30s intervals over ~95s: roughly 3.
	got := len(s.Activations())
	if got < 2 || got > 5 {
		t.Fatalf("periodic session activated %d times, want ~3", got)
	}
}

func TestSessionLookupReplaysSolution(t *testing.T) {
	built := buildScenario(t, scenario.SC2CF2(), 19)
	cfg := sessionConfig(core.EventBased)
	cfg.UseLookup = true
	s, err := core.NewSession(built.Runtime, cfg, sim.NewRNG(19))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(15000); err != nil {
		t.Fatal(err)
	}
	if s.Lookup().Len() == 0 {
		t.Fatal("lookup table empty after first activation")
	}
	// Disturb the scene into a new environment and back: removing and
	// re-adding the same object returns to a remembered key, so the next
	// activation replays instead of exploring.
	first := len(s.Activations())
	if err := built.Scene.Remove("hammer_2"); err != nil {
		t.Fatal(err)
	}
	built.Runtime.SyncRenderLoad()
	if err := s.RunFor(30000); err != nil {
		t.Fatal(err)
	}
	if len(s.Activations()) == first {
		t.Skip("scene change did not trigger (reward drift below threshold)")
	}
	var replayed bool
	for _, a := range s.Activations() {
		if a.FromLookup {
			replayed = true
		}
	}
	// At least the table must now contain both environments.
	if s.Lookup().Len() < 2 && !replayed {
		t.Fatalf("lookup table not learning environments: len=%d", s.Lookup().Len())
	}
}

func TestSessionConfigValidation(t *testing.T) {
	built := buildScenario(t, scenario.SC2CF2(), 23)
	bad := sessionConfig(core.Periodic)
	bad.PeriodicIntervalMS = 0
	if _, err := core.NewSession(built.Runtime, bad, sim.NewRNG(1)); err == nil {
		t.Fatal("periodic session without interval accepted")
	}
	bad2 := sessionConfig(core.EventBased)
	bad2.Mode = 0
	if _, err := core.NewSession(built.Runtime, bad2, sim.NewRNG(1)); err == nil {
		t.Fatal("invalid mode accepted")
	}
}
