package core_test

import (
	"testing"

	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
)

// TestWeightSemantics checks the economic meaning of w in Eq. 3: with w = 0
// the optimizer has no reason to give up triangles, and with a large w it
// sacrifices quality aggressively for latency. This is the semantic
// regression test for the whole cost pipeline.
func TestWeightSemantics(t *testing.T) {
	run := func(w float64) *core.Result {
		built, err := scenario.SC1CF1().Build(11)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.Weight = w
		res, err := core.RunActivation(built.Runtime, cfg, sim.NewRNG(11))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	qualityOnly := run(0)
	balanced := run(2.5)
	latencyObsessed := run(25)

	// w = 0: cost is -Q alone; full triangles are optimal.
	if qualityOnly.Ratio < 0.95 {
		t.Errorf("w=0 chose ratio %.2f, want ~1 (no reason to decimate)", qualityOnly.Ratio)
	}
	if qualityOnly.Quality < 0.99 {
		t.Errorf("w=0 quality %.3f, want ~1", qualityOnly.Quality)
	}
	// Large w drives latency below the balanced configuration's, giving up
	// quality to get there.
	if latencyObsessed.Epsilon > balanced.Epsilon+0.05 {
		t.Errorf("w=25 epsilon %.3f should not exceed w=2.5's %.3f", latencyObsessed.Epsilon, balanced.Epsilon)
	}
	// Below the render knee ε is nearly flat in x, so the exact ratio is a
	// plateau choice; it must merely stay clearly below full quality.
	if latencyObsessed.Ratio > 0.9 {
		t.Errorf("w=25 ratio %.2f, want clearly below 1", latencyObsessed.Ratio)
	}
	// And the balanced setting sits between the extremes on quality.
	if !(latencyObsessed.Quality <= balanced.Quality+0.05 && balanced.Quality <= qualityOnly.Quality+0.02) {
		t.Errorf("quality ordering violated: w=25 %.3f, w=2.5 %.3f, w=0 %.3f",
			latencyObsessed.Quality, balanced.Quality, qualityOnly.Quality)
	}
}

// TestRMinRespected pins Constraint 10: no activation may choose a ratio
// below R^min even when latency pressure is extreme.
func TestRMinRespected(t *testing.T) {
	built, err := scenario.SC1CF1().Build(13)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Weight = 50
	cfg.RMin = 0.35
	res, err := core.RunActivation(built.Runtime, cfg, sim.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Iterations {
		if x := it.Point[len(it.Point)-1]; x < cfg.RMin-1e-9 {
			t.Fatalf("iteration explored ratio %v below RMin %v", x, cfg.RMin)
		}
	}
	if res.Ratio < cfg.RMin-1e-9 {
		t.Fatalf("final ratio %v below RMin %v", res.Ratio, cfg.RMin)
	}
}
