// Package core implements the paper's HBO framework itself: the runtime
// that binds the AR scene to the SoC simulator and measures the two
// controlled variables (average virtual-object quality Q_t of Eq. 2 and
// normalized AI latency ε_t of Eq. 4), Algorithm 1's optimization loop, the
// event-based activation policy of §IV-E, and the lookup-table extension
// sketched as future work in §VI.
package core

import (
	"fmt"

	"github.com/mar-hbo/hbo/internal/alloc"
	"github.com/mar-hbo/hbo/internal/obs"
	"github.com/mar-hbo/hbo/internal/render"
	"github.com/mar-hbo/hbo/internal/soc"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// Runtime binds one MAR app: an AR scene rendered on the device plus a set
// of AI tasks running on the same SoC, with the offline profile needed to
// normalize latencies.
type Runtime struct {
	Sys     *soc.System
	Scene   *render.Scene
	Profile *soc.Profile
	// Taskset is the running AI taskset (M tasks).
	Taskset tasks.Set
	// lod, when set, supplies actual decimated geometry after each TD run
	// (Fig. 3's cache/server path); nil keeps triangle bookkeeping only.
	lod render.LODProvider
	// fallbackLOD, when set, takes over when lod is unavailable or failing
	// (the on-device decimator): the app keeps rendering at locally
	// decimated quality instead of stalling on a dead edge link.
	fallbackLOD render.LODProvider
	// boBackend, when set, proposes BO configurations remotely (§VI); on
	// error the activation transparently falls back to the local optimizer.
	boBackend BOBackend
	boSeed    uint64
	// degraded is sticky across windows: true from the moment a fallback
	// takes over until the primary provider serves successfully again.
	degraded       bool
	degradedEvents int

	// Observability: reg is kept so activations can hand it down to the BO
	// optimizer and emit timeline events; the individual instruments are
	// nil-safe no-ops when no registry is attached.
	reg               *obs.Registry
	metActivations    *obs.Counter
	metLookupHits     *obs.Counter
	metLookupMisses   *obs.Counter
	metLODPrimary     *obs.Counter
	metLODFallback    *obs.Counter
	metDegradedEnter  *obs.Counter
	metDegradedExit   *obs.Counter
	metWindows        *obs.Counter
	metWindowQuality  *obs.Histogram
	metWindowEpsilon  *obs.Histogram
	metDeadlineMisses *obs.Gauge
}

// epsilonBuckets covers the normalized-latency-inflation range: 0 is the
// profiled isolation latency, a few means heavy contention.
var epsilonBuckets = []float64{0, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1, 1.5, 2, 3, 5}

// SetObserver attaches a metrics registry to the runtime (and, via
// RunActivation, to the optimizers it spawns). Metrics never influence
// control decisions: measurements, activations, and golden outputs are
// byte-identical with observability on or off.
func (rt *Runtime) SetObserver(reg *obs.Registry) {
	rt.reg = reg
	rt.metActivations = reg.Counter("core.activations")
	rt.metLookupHits = reg.Counter("core.lookup_hits")
	rt.metLookupMisses = reg.Counter("core.lookup_misses")
	rt.metLODPrimary = reg.Counter("core.lod_primary_ok")
	rt.metLODFallback = reg.Counter("core.lod_fallback")
	rt.metDegradedEnter = reg.Counter("core.degraded_enter")
	rt.metDegradedExit = reg.Counter("core.degraded_exit")
	rt.metWindows = reg.Counter("core.windows_measured")
	rt.metWindowQuality = reg.Histogram("core.window_quality", obs.RewardBuckets)
	rt.metWindowEpsilon = reg.Histogram("core.window_epsilon", epsilonBuckets)
	rt.metDeadlineMisses = reg.Gauge("core.deadline_miss_rate")
}

// Observer returns the attached registry (nil when observability is off).
func (rt *Runtime) Observer() *obs.Registry { return rt.reg }

// BOBackend proposes the next BO configuration from the full observation
// database — the §VI remote-BO step, stateless per call so any proposal can
// be lost to the link without corrupting the session. The edge client
// implements it.
type BOBackend interface {
	BONextPoint(resources int, rmin float64, seed uint64, points [][]float64, costs []float64) ([]float64, error)
}

// NewRuntime registers every task of the set on its profiled best resource
// (the natural app-start state, before any optimization) and synchronizes
// the initial render load.
func NewRuntime(sys *soc.System, scene *render.Scene, prof *soc.Profile, set tasks.Set) (*Runtime, error) {
	rt := &Runtime{Sys: sys, Scene: scene, Profile: prof, Taskset: set}
	for _, task := range set.Tasks {
		best, ok := prof.Best[task.ID()]
		if !ok {
			return nil, fmt.Errorf("core: task %s missing from profile", task.ID())
		}
		if err := sys.AddTask(task, best); err != nil {
			return nil, err
		}
	}
	rt.SyncRenderLoad()
	return rt, nil
}

// TaskIDs returns the taskset's IDs in definition order.
func (rt *Runtime) TaskIDs() []string {
	ids := make([]string, len(rt.Taskset.Tasks))
	for i, task := range rt.Taskset.Tasks {
		ids[i] = task.ID()
	}
	return ids
}

// SetLODProvider attaches a level-of-detail source (the edge client or a
// local decimator); subsequent ApplyConfiguration calls fetch and attach the
// decimated geometry Algorithm 1 line 23 redraws.
func (rt *Runtime) SetLODProvider(p render.LODProvider) {
	rt.lod = p
}

// SetLocalFallback attaches the on-device decimator used when the primary
// LOD provider is unavailable (circuit open) or failing. With a fallback in
// place, edge outages degrade the session instead of erroring it.
func (rt *Runtime) SetLocalFallback(p render.LODProvider) {
	rt.fallbackLOD = p
}

// SetBOBackend attaches a remote BO proposer (the edge client) with the
// seed its server-side optimizer runs under. Activations ask it for
// post-init proposals and fall back to the local optimizer when it fails.
func (rt *Runtime) SetBOBackend(b BOBackend, seed uint64) {
	rt.boBackend = b
	rt.boSeed = seed
}

// Degraded reports whether the runtime is currently operating on fallback
// output (degraded mode): set when a fallback takes over, cleared when the
// primary provider serves successfully again (breaker recovery).
func (rt *Runtime) Degraded() bool { return rt.degraded }

// DegradedEvents counts entries into degraded mode (fault episodes, not
// windows — Session counts windows).
func (rt *Runtime) DegradedEvents() int { return rt.degradedEvents }

// SyncRenderLoad pushes the scene's current GPU rendering utilization into
// the SoC simulator. Call after any change to object triangles or distance.
func (rt *Runtime) SyncRenderLoad() {
	dev := rt.Sys.Device()
	rt.Sys.SetRenderUtil(dev.RenderUtilFor(rt.Scene.VisibleTriangles()))
}

// ApplyAllocation moves every task to its resource in the assignment.
func (rt *Runtime) ApplyAllocation(a alloc.Assignment) error {
	for id, r := range a {
		if err := rt.Sys.SetAllocation(id, r); err != nil {
			return err
		}
	}
	return nil
}

// ApplyConfiguration enforces one candidate configuration (c, x): translate
// proportions into a per-task assignment (Algorithm 1 lines 2–22), run TD to
// redistribute triangles (line 23), and refresh the render load.
func (rt *Runtime) ApplyConfiguration(c []float64, x float64) (alloc.Assignment, error) {
	counts, err := alloc.Counts(c, len(rt.Taskset.Tasks))
	if err != nil {
		return nil, err
	}
	assignment, err := alloc.Assign(counts, rt.Profile, rt.TaskIDs())
	if err != nil {
		return nil, err
	}
	if err := rt.ApplyAllocation(assignment); err != nil {
		return nil, err
	}
	if err := alloc.DistributeTriangles(rt.Scene.Objects(), x); err != nil {
		return nil, err
	}
	if rt.lod != nil {
		if err := rt.applyLOD(); err != nil {
			return nil, err
		}
	}
	rt.SyncRenderLoad()
	return assignment, nil
}

// applyLOD fetches decimated geometry through the primary provider,
// degrading to the local fallback when the primary is unavailable or
// failing — the paper's app keeps rendering (at locally decimated quality)
// rather than stalling on a dead edge link. Recovery is transparent: the
// next successful primary fetch clears degraded mode.
func (rt *Runtime) applyLOD() error {
	// Refetch geometry only when an object's ratio moved visibly.
	const minDelta = 0.02
	primaryReady := true
	if av, ok := rt.lod.(render.Availability); ok {
		primaryReady = av.Available()
	}
	if primaryReady || rt.fallbackLOD == nil {
		err := rt.Scene.ApplyLOD(rt.lod, minDelta)
		if err == nil {
			rt.metLODPrimary.Inc()
			if rt.degraded {
				rt.metDegradedExit.Inc()
				rt.emit(obs.Event{TimeMS: rt.Sys.Now(), Kind: "core.degraded.exit"})
			}
			rt.degraded = false
			return nil
		}
		if rt.fallbackLOD == nil {
			return err
		}
	}
	if err := rt.Scene.ApplyLOD(rt.fallbackLOD, minDelta); err != nil {
		return fmt.Errorf("core: local LOD fallback: %w", err)
	}
	rt.metLODFallback.Inc()
	if !rt.degraded {
		rt.degradedEvents++
		rt.metDegradedEnter.Inc()
		rt.emit(obs.Event{TimeMS: rt.Sys.Now(), Kind: "core.degraded.enter"})
	}
	rt.degraded = true
	return nil
}

// emit forwards an event to the attached registry (no-op when detached).
func (rt *Runtime) emit(ev obs.Event) { rt.reg.Emit(ev) }

// Measurement is one control-period observation of the system.
type Measurement struct {
	// Quality is Q_t (Eq. 2) under the fitted quality model.
	Quality float64
	// Epsilon is ε_t (Eq. 4): mean normalized latency inflation over τ_e.
	Epsilon float64
	// PerTaskLatency is the measured mean latency per task ID.
	PerTaskLatency map[string]float64
	// AveragePowerW is the platform's mean power over the window (energy
	// extension; the paper's quality model descends from the
	// energy-oriented eAR).
	AveragePowerW float64
	// FPS is the renderer's achieved frame rate under the window's load
	// (a screen metric the paper defers to future work).
	FPS float64
	// DeadlineMissRate is the fraction of inferences across all tasks whose
	// latency exceeded their issue period (stale perception results).
	DeadlineMissRate float64
	// Degraded marks windows measured while the runtime operated on
	// fallback output (edge unavailable) — the fault-tolerance layer's
	// degraded-mode accounting.
	Degraded bool
}

// Reward returns B_t = Q − w·ε (Eq. 3).
func (m Measurement) Reward(w float64) float64 { return m.Quality - w*m.Epsilon }

// Cost returns φ = −B_t (Eq. 5), the quantity BO minimizes.
func (m Measurement) Cost(w float64) float64 { return -m.Reward(w) }

// Measure runs the simulator for periodMS of virtual time and returns the
// window's measurement.
func (rt *Runtime) Measure(periodMS float64) (Measurement, error) {
	if periodMS <= 0 {
		return Measurement{}, fmt.Errorf("core: non-positive measurement period %v", periodMS)
	}
	rt.Sys.ResetWindow()
	rt.Sys.ResetEnergy()
	rt.Sys.RunFor(periodMS)
	stats := rt.Sys.WindowStats()

	dev := rt.Sys.Device()
	m := Measurement{
		Quality:        rt.Scene.AverageQuality(),
		PerTaskLatency: make(map[string]float64, len(stats)),
		AveragePowerW:  soc.AveragePowerW(rt.Sys.EnergyMJ(), periodMS),
		FPS:            dev.FPSFor(rt.Scene.VisibleTriangles()),
		Degraded:       rt.degraded,
	}
	sum := 0.0
	n := 0
	completions, misses := 0, 0
	for _, id := range rt.TaskIDs() {
		st, ok := stats[id]
		if !ok {
			return Measurement{}, fmt.Errorf("core: no window stats for task %s", id)
		}
		expected := rt.Profile.Expected[id]
		if expected <= 0 {
			return Measurement{}, fmt.Errorf("core: invalid expected latency for %s", id)
		}
		m.PerTaskLatency[id] = st.MeanLatencyMS
		completions += st.Count
		misses += st.DeadlineMisses
		slow := (st.MeanLatencyMS - expected) / expected
		if slow < 0 {
			// Noise can dip below the profiled isolation latency; the paper's
			// ε is an inflation measure, floor at zero.
			slow = 0
		}
		sum += slow
		n++
	}
	if n > 0 {
		m.Epsilon = sum / float64(n)
	}
	if completions > 0 {
		m.DeadlineMissRate = float64(misses) / float64(completions)
	}
	rt.metWindows.Inc()
	rt.metWindowQuality.Observe(m.Quality)
	rt.metWindowEpsilon.Observe(m.Epsilon)
	rt.metDeadlineMisses.Set(m.DeadlineMissRate)
	return m, nil
}
