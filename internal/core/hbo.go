package core

import (
	"fmt"

	"github.com/mar-hbo/hbo/internal/alloc"
	"github.com/mar-hbo/hbo/internal/bo"
	"github.com/mar-hbo/hbo/internal/obs"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// Config holds HBO's tunables with the values used in the paper's
// evaluation.
type Config struct {
	// Weight is w in Eq. 3 (the paper evaluates with 2.5).
	Weight float64
	// RMin is the minimum total triangle ratio (Constraint 10).
	RMin float64
	// InitSamples is the number of random configurations that seed the BO
	// database at each activation (the paper uses 5).
	InitSamples int
	// Iterations is the number of BO-guided iterations after seeding (the
	// paper uses 15).
	Iterations int
	// PeriodMS is the control period over which each candidate
	// configuration is measured.
	PeriodMS float64
	// SettleMS is simulated time allowed after enforcing a configuration
	// before its measurement window opens, so in-flight inferences from the
	// previous configuration do not pollute the cost sample.
	SettleMS float64
	// IncreaseThreshold and DecreaseThreshold are the activation policy's
	// reward-drift bounds (the paper determines 5% and 10% empirically).
	IncreaseThreshold float64
	DecreaseThreshold float64
	// MonitorIntervalMS is the reward sampling interval of the activation
	// monitor (the paper samples every 2 seconds).
	MonitorIntervalMS float64
	// CooldownMS is the hold-off after an activation during which the
	// event-based policy will not re-trigger, bounding churn when the
	// enforced solution's reward is noisy under heavy contention.
	CooldownMS float64
}

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig() Config {
	return Config{
		Weight:            2.5,
		RMin:              0.1,
		InitSamples:       5,
		Iterations:        15,
		PeriodMS:          2000,
		SettleMS:          500,
		IncreaseThreshold: 0.05,
		DecreaseThreshold: 0.10,
		MonitorIntervalMS: 2000,
		CooldownMS:        30000,
	}
}

// Validate rejects configurations HBO cannot run with.
func (c Config) Validate() error {
	if c.Weight < 0 {
		return fmt.Errorf("core: negative weight %v", c.Weight)
	}
	if c.RMin < 0 || c.RMin >= 1 {
		return fmt.Errorf("core: RMin %v out of [0,1)", c.RMin)
	}
	if c.InitSamples < 1 || c.Iterations < 1 {
		return fmt.Errorf("core: need at least one init sample and one iteration")
	}
	if c.PeriodMS <= 0 || c.MonitorIntervalMS <= 0 {
		return fmt.Errorf("core: non-positive period")
	}
	if c.SettleMS < 0 {
		return fmt.Errorf("core: negative settle time")
	}
	if c.CooldownMS < 0 {
		return fmt.Errorf("core: negative cooldown")
	}
	return nil
}

// Iteration records one HBO iteration for analysis (Figs. 4c, 6, 7).
type Iteration struct {
	// Point is the BO input [c_1, c_2, c_3, x].
	Point []float64
	// Cost is the measured φ = −B.
	Cost float64
	// Quality and Epsilon are the window's Q_t and ε_t.
	Quality float64
	Epsilon float64
	// Assignment is the per-task allocation the heuristic realized.
	Assignment alloc.Assignment
	// Degraded marks iterations measured while the runtime operated on
	// fallback output (edge link down).
	Degraded bool
}

// Result is the outcome of one HBO activation.
type Result struct {
	// Iterations holds every explored configuration in order (init samples
	// first).
	Iterations []Iteration
	// BestIndex is the index of the lowest-cost iteration.
	BestIndex int
	// Assignment and Ratio are the final enforced configuration.
	Assignment alloc.Assignment
	// Point is the winning BO input vector.
	Point []float64
	Ratio float64
	// Cost, Quality, Epsilon echo the winning iteration's measurements.
	Cost    float64
	Quality float64
	Epsilon float64
	// RemoteProposals and FallbackProposals count post-init iterations whose
	// configuration came from the remote BO backend versus the local
	// optimizer after a remote failure. Both zero when no backend is set.
	RemoteProposals   int
	FallbackProposals int
}

// BestCostTrajectory returns the running minimum cost after each iteration
// (the series plotted in Figs. 4c and 7).
func (r *Result) BestCostTrajectory() []float64 {
	out := make([]float64, len(r.Iterations))
	best := 0.0
	for i, it := range r.Iterations {
		if i == 0 || it.Cost < best {
			best = it.Cost
		}
		out[i] = best
	}
	return out
}

// InputDistances returns the Euclidean distance between consecutive BO
// inputs (Fig. 6a's exploration/exploitation trace).
func (r *Result) InputDistances() []float64 {
	if len(r.Iterations) < 2 {
		return nil
	}
	out := make([]float64, len(r.Iterations)-1)
	for i := 1; i < len(r.Iterations); i++ {
		out[i-1] = bo.Distance(r.Iterations[i].Point, r.Iterations[i-1].Point)
	}
	return out
}

// RunActivation executes one full HBO activation (Algorithm 1 repeated for
// InitSamples + Iterations periods): propose a configuration, enforce it
// through the heuristics, measure a control period, feed the cost back into
// the BO database — then enforce the best configuration found.
func RunActivation(rt *Runtime, cfg Config, rng *sim.RNG) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dom := bo.Domain{N: tasks.NumResources, RMin: cfg.RMin}
	boCfg := bo.DefaultConfig()
	boCfg.InitSamples = cfg.InitSamples
	opt, err := bo.NewOptimizer(dom, boCfg, rng)
	if err != nil {
		return nil, err
	}
	opt.SetObserver(rt.reg)
	rt.metActivations.Inc()
	rt.emit(obs.Event{TimeMS: rt.Sys.Now(), Kind: "core.activation.start"})
	res := &Result{}
	total := cfg.InitSamples + cfg.Iterations
	// points and costs mirror the optimizer's database for the (stateless)
	// remote backend; the local optimizer observes every sample regardless
	// of who proposed it, so it can take over mid-activation at any time.
	var points [][]float64
	var costs []float64
	for i := 0; i < total; i++ {
		point := rt.proposeRemote(dom, cfg, i, points, costs, res)
		if point == nil {
			point, err = opt.Next()
			if err != nil {
				return nil, fmt.Errorf("core: BO suggestion %d: %w", i, err)
			}
		}
		assignment, err := rt.ApplyConfiguration(point[:tasks.NumResources], point[tasks.NumResources])
		if err != nil {
			return nil, fmt.Errorf("core: applying configuration %d: %w", i, err)
		}
		rt.Sys.RunFor(cfg.SettleMS)
		m, err := rt.Measure(cfg.PeriodMS)
		if err != nil {
			return nil, err
		}
		cost := m.Cost(cfg.Weight)
		if err := opt.Observe(point, cost); err != nil {
			return nil, err
		}
		points = append(points, point)
		costs = append(costs, cost)
		res.Iterations = append(res.Iterations, Iteration{
			Point:      point,
			Cost:       cost,
			Quality:    m.Quality,
			Epsilon:    m.Epsilon,
			Assignment: assignment,
			Degraded:   m.Degraded,
		})
		if cost < res.Iterations[res.BestIndex].Cost {
			res.BestIndex = i
		}
	}
	best := res.Iterations[res.BestIndex]
	assignment, err := rt.ApplyConfiguration(best.Point[:tasks.NumResources], best.Point[tasks.NumResources])
	if err != nil {
		return nil, fmt.Errorf("core: enforcing best configuration: %w", err)
	}
	// Let in-flight inferences from the last explored configuration drain so
	// the caller's next measurement sees the enforced solution, not the
	// exploration tail.
	rt.Sys.RunFor(cfg.SettleMS)
	res.Assignment = assignment
	res.Point = best.Point
	res.Ratio = best.Point[tasks.NumResources]
	res.Cost = best.Cost
	res.Quality = best.Quality
	res.Epsilon = best.Epsilon
	rt.emit(obs.Event{TimeMS: rt.Sys.Now(), Kind: "core.activation.end", Value: res.Cost})
	return res, nil
}

// proposeRemote asks the runtime's remote BO backend for iteration i's
// configuration. It returns nil — deferring to the local optimizer — when no
// backend is set, during the on-device init sampling, when the backend's
// circuit is open, or when the proposal fails or is out of domain; remote
// faults degrade the activation to local proposals instead of aborting it.
func (rt *Runtime) proposeRemote(dom bo.Domain, cfg Config, i int, points [][]float64, costs []float64, res *Result) []float64 {
	if rt.boBackend == nil || i < cfg.InitSamples {
		return nil
	}
	if av, ok := rt.boBackend.(interface{ Available() bool }); ok && !av.Available() {
		res.FallbackProposals++
		return nil
	}
	p, err := rt.boBackend.BONextPoint(tasks.NumResources, cfg.RMin, rt.boSeed, points, costs)
	if err != nil || len(p) != dom.Dim() || !dom.Contains(p) {
		res.FallbackProposals++
		return nil
	}
	res.RemoteProposals++
	return p
}
