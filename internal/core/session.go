package core

import (
	"fmt"
	"sort"

	"github.com/mar-hbo/hbo/internal/obs"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// RewardSample is one monitor observation (the dots and boxes of Fig. 8).
type RewardSample struct {
	TimeMS float64
	Reward float64
	// InActivation marks samples produced while Bayesian iterations were
	// exploring (the boxed regions of Fig. 8a).
	InActivation bool
	// Degraded marks windows measured while the runtime ran on local
	// fallback output (edge link down).
	Degraded bool
}

// ActivationMark records one activation and its outcome.
type ActivationMark struct {
	TimeMS float64
	// EndMS is the virtual time when the activation finished enforcing its
	// solution; EndMS − TimeMS is the user-visible exploration span.
	EndMS float64
	// FromLookup is true when the solution was replayed from the lookup
	// table instead of running Bayesian iterations.
	FromLookup bool
	Result     *Result
}

// ActivationMode selects how a session decides to re-optimize.
type ActivationMode int

// Activation modes: the paper's event-based policy versus the periodic
// strawman it compares against in Fig. 8b.
const (
	EventBased ActivationMode = iota + 1
	Periodic
)

// SessionConfig configures a monitored app session.
type SessionConfig struct {
	HBO  Config
	Mode ActivationMode
	// PeriodicIntervalMS is the fixed re-optimization interval in Periodic
	// mode.
	PeriodicIntervalMS float64
	// UseLookup enables the §VI lookup-table extension in EventBased mode.
	UseLookup bool
	// InitialLookup seeds the lookup table with previously persisted
	// solutions (implies UseLookup).
	InitialLookup *LookupTable
}

// Session drives a MAR app over virtual time: it samples the reward every
// MonitorIntervalMS and runs HBO activations according to the policy, while
// the caller mutates the scene (object placements, user movement) between
// Step calls.
type Session struct {
	rt      *Runtime
	cfg     SessionConfig
	rng     *sim.RNG
	monitor *Monitor
	lookup  *LookupTable

	lastPeriodic    float64
	lastActivation  float64
	samples         []RewardSample
	activations     []ActivationMark
	degradedWindows int
	// recent holds the last few monitor rewards; drift is judged on their
	// mean so a single noisy window cannot trigger a full activation.
	recent []float64
}

// NewSession builds a session around an existing runtime.
func NewSession(rt *Runtime, cfg SessionConfig, rng *sim.RNG) (*Session, error) {
	if err := cfg.HBO.Validate(); err != nil {
		return nil, err
	}
	if cfg.Mode != EventBased && cfg.Mode != Periodic {
		return nil, fmt.Errorf("core: invalid activation mode %d", cfg.Mode)
	}
	if cfg.Mode == Periodic && cfg.PeriodicIntervalMS <= 0 {
		return nil, fmt.Errorf("core: periodic mode needs a positive interval")
	}
	mon, err := NewMonitor(cfg.HBO.IncreaseThreshold, cfg.HBO.DecreaseThreshold)
	if err != nil {
		return nil, err
	}
	s := &Session{rt: rt, cfg: cfg, rng: rng, monitor: mon}
	if cfg.InitialLookup != nil {
		s.lookup = cfg.InitialLookup
	} else if cfg.UseLookup {
		s.lookup = NewLookupTable()
	}
	return s, nil
}

// Runtime returns the underlying runtime so callers can mutate the scene
// between steps.
func (s *Session) Runtime() *Runtime { return s.rt }

// Samples returns the recorded reward series.
func (s *Session) Samples() []RewardSample { return s.samples }

// Activations returns the recorded activations.
func (s *Session) Activations() []ActivationMark { return s.activations }

// Lookup returns the lookup table (nil unless enabled).
func (s *Session) Lookup() *LookupTable { return s.lookup }

// DegradedWindows returns how many recorded reward windows were measured in
// degraded mode (runtime on local fallback because the edge was down).
func (s *Session) DegradedWindows() int { return s.degradedWindows }

// ProposalStats aggregates proposal provenance over every recorded
// activation: how many post-init BO iterations used a remote backend's
// suggestion versus the local optimizer after a remote failure. Both are
// zero when no backend was attached.
func (s *Session) ProposalStats() (remote, fallback int) {
	for _, a := range s.activations {
		if a.Result != nil {
			remote += a.Result.RemoteProposals
			fallback += a.Result.FallbackProposals
		}
	}
	return remote, fallback
}

// record appends one reward sample and maintains the degraded-window count.
func (s *Session) record(smp RewardSample) {
	s.samples = append(s.samples, smp)
	if smp.Degraded {
		s.degradedWindows++
	}
}

// TimelineEvent is one entry of the merged observability timeline: reward
// samples interleaved with activation boundaries and degraded-mode edges, in
// virtual-time order.
type TimelineEvent struct {
	TimeMS float64 `json:"t_ms"`
	// Kind is one of "sample", "activation.start", "activation.end",
	// "degraded.enter", "degraded.exit".
	Kind string `json:"kind"`
	// Value is the reward for samples and the enforced solution's reward for
	// activation ends (zero for lookup replays, whose reward arrives as the
	// in-activation sample at the same timestamp).
	Value float64 `json:"value,omitempty"`
	// Detail annotates the event: "in_activation" on samples taken during
	// exploration, "lookup" on activations replayed from the lookup table.
	Detail string `json:"detail,omitempty"`
}

// ObservedTimeline merges the recorded reward series with activation marks
// and degraded-mode transitions (derived from consecutive samples' Degraded
// flag) into one chronologically sorted trace. It is built purely from
// session state, so it works with or without an attached metrics registry.
func (s *Session) ObservedTimeline() []TimelineEvent {
	out := make([]TimelineEvent, 0, len(s.samples)+2*len(s.activations))
	degraded := false
	for _, smp := range s.samples {
		if smp.Degraded && !degraded {
			out = append(out, TimelineEvent{TimeMS: smp.TimeMS, Kind: "degraded.enter"})
		} else if !smp.Degraded && degraded {
			out = append(out, TimelineEvent{TimeMS: smp.TimeMS, Kind: "degraded.exit"})
		}
		degraded = smp.Degraded
		ev := TimelineEvent{TimeMS: smp.TimeMS, Kind: "sample", Value: smp.Reward}
		if smp.InActivation {
			ev.Detail = "in_activation"
		}
		out = append(out, ev)
	}
	for _, a := range s.activations {
		startEv := TimelineEvent{TimeMS: a.TimeMS, Kind: "activation.start"}
		endEv := TimelineEvent{TimeMS: a.EndMS, Kind: "activation.end"}
		if a.FromLookup {
			startEv.Detail = "lookup"
			endEv.Detail = "lookup"
		}
		if a.Result != nil {
			endEv.Value = -a.Result.Cost
		}
		out = append(out, startEv, endEv)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TimeMS < out[j].TimeMS })
	return out
}

// ExplorationTimeMS returns the total virtual time the session spent inside
// activations — the user-visible cost of re-optimizing that the §VI lookup
// table exists to amortize.
func (s *Session) ExplorationTimeMS() float64 {
	total := 0.0
	for _, a := range s.activations {
		total += a.EndMS - a.TimeMS
	}
	return total
}

// Step advances one monitor interval: measure the reward, record it, and
// activate if the policy calls for it.
func (s *Session) Step() error {
	m, err := s.rt.Measure(s.cfg.HBO.MonitorIntervalMS)
	if err != nil {
		return err
	}
	b := m.Reward(s.cfg.HBO.Weight)
	s.record(RewardSample{TimeMS: s.rt.Sys.Now(), Reward: b, Degraded: m.Degraded})
	const smoothing = 3
	s.recent = append(s.recent, b)
	if len(s.recent) > smoothing {
		s.recent = s.recent[len(s.recent)-smoothing:]
	}
	smoothed := 0.0
	for _, v := range s.recent {
		smoothed += v
	}
	smoothed /= float64(len(s.recent))

	if s.rt.Scene.Len() == 0 {
		return nil // nothing to optimize yet
	}
	switch s.cfg.Mode {
	case Periodic:
		if s.rt.Sys.Now()-s.lastPeriodic >= s.cfg.PeriodicIntervalMS {
			s.lastPeriodic = s.rt.Sys.Now()
			return s.activate()
		}
	case EventBased:
		// The first activation (no reference yet) fires immediately on the
		// raw sample; afterwards drift is judged on the smoothed reward,
		// and a cooldown bounds churn right after an activation.
		if !s.monitor.HasReference() {
			return s.activate()
		}
		inCooldown := s.rt.Sys.Now()-s.lastActivation < s.cfg.HBO.CooldownMS
		if !inCooldown && s.monitor.ShouldActivate(smoothed) {
			return s.activate()
		}
	}
	return nil
}

// RunFor advances the session by whole monitor intervals covering durationMS.
func (s *Session) RunFor(durationMS float64) error {
	end := s.rt.Sys.Now() + durationMS
	for s.rt.Sys.Now() < end {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// activate runs one HBO activation (or replays a remembered solution) and
// refreshes the monitor reference.
func (s *Session) activate() error {
	start := s.rt.Sys.Now()
	if s.lookup != nil {
		key := Key(s.rt)
		if e, ok := s.lookup.Find(key); ok {
			s.rt.metLookupHits.Inc()
			s.rt.emit(obs.Event{TimeMS: start, Kind: "core.lookup.hit", Detail: key.String()})
			if _, err := s.rt.ApplyConfiguration(e.Point[:tasks.NumResources], e.Point[tasks.NumResources]); err != nil {
				return err
			}
			m, err := s.rt.Measure(s.cfg.HBO.PeriodMS)
			if err != nil {
				return err
			}
			b := m.Reward(s.cfg.HBO.Weight)
			s.monitor.SetReference(b)
			s.recent = s.recent[:0]
			s.lastActivation = s.rt.Sys.Now()
			s.record(RewardSample{TimeMS: s.rt.Sys.Now(), Reward: b, InActivation: true, Degraded: m.Degraded})
			s.activations = append(s.activations, ActivationMark{TimeMS: start, EndMS: s.rt.Sys.Now(), FromLookup: true})
			return nil
		}
		s.rt.metLookupMisses.Inc()
		s.rt.emit(obs.Event{TimeMS: start, Kind: "core.lookup.miss", Detail: key.String()})
	}
	res, err := RunActivation(s.rt, s.cfg.HBO, s.rng)
	if err != nil {
		return err
	}
	for i, it := range res.Iterations {
		// Reconstruct per-iteration timestamps: iterations ran back to back
		// over PeriodMS windows.
		ts := start + float64(i+1)*s.cfg.HBO.PeriodMS
		s.record(RewardSample{
			TimeMS:       ts,
			Reward:       -it.Cost,
			InActivation: true,
			Degraded:     it.Degraded,
		})
	}
	// The winning iteration's cost can be optimistic (exploration noise
	// favours lucky windows). Re-measure the enforced configuration for the
	// reference so steady-state samples are compared against steady state,
	// not against the luckiest window of the run.
	m, err := s.rt.Measure(s.cfg.HBO.PeriodMS)
	if err != nil {
		return err
	}
	s.monitor.SetReference(m.Reward(s.cfg.HBO.Weight))
	s.recent = s.recent[:0]
	s.lastActivation = s.rt.Sys.Now()
	s.activations = append(s.activations, ActivationMark{TimeMS: start, EndMS: s.rt.Sys.Now(), Result: res})
	if s.lookup != nil {
		s.lookup.Store(Key(s.rt), LookupEntry{Point: res.Point, Reward: -res.Cost})
	}
	return nil
}
