package core_test

import (
	"testing"

	"github.com/mar-hbo/hbo/internal/alloc"
	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// fixedConfig applies a hand-built allocation and triangle ratio, then
// measures a window — used to probe the substrate with the exact
// configurations of the paper's Table IV.
func fixedConfig(t *testing.T, rt *core.Runtime, a alloc.Assignment, x float64) core.Measurement {
	t.Helper()
	if err := rt.ApplyAllocation(a); err != nil {
		t.Fatal(err)
	}
	if err := alloc.DistributeTriangles(rt.Scene.Objects(), x); err != nil {
		t.Fatal(err)
	}
	rt.SyncRenderLoad()
	rt.Sys.RunFor(1000) // settle after the switch
	m, err := rt.Measure(5000)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestTableIVOrderingSC1CF1 probes the SC1-CF1 substrate with the paper's
// Table IV configurations and checks the latency ordering the paper
// reports: HBO < SMQ < BNT < AllN, with SML's latency near HBO's at lower
// quality (Fig. 5).
func TestTableIVOrderingSC1CF1(t *testing.T) {
	built, err := scenario.SC1CF1().Build(42)
	if err != nil {
		t.Fatal(err)
	}
	rt := built.Runtime

	hboAlloc := alloc.Assignment{
		"mobilenetDetv1": tasks.NNAPI, "efficientclass-lite0": tasks.NNAPI, "mobilenetv1": tasks.NNAPI,
		"mnist": tasks.CPU, "model-metadata": tasks.CPU, "model-metadata_2": tasks.CPU,
	}
	staticAlloc := alloc.Assignment{ // profiled best per task (SMQ, SML)
		"mobilenetDetv1": tasks.NNAPI, "efficientclass-lite0": tasks.NNAPI, "mobilenetv1": tasks.NNAPI,
		"mnist": tasks.GPU, "model-metadata": tasks.GPU, "model-metadata_2": tasks.GPU,
	}
	bntAlloc := alloc.Assignment{ // Table IV's BNT column
		"mobilenetDetv1": tasks.NNAPI, "efficientclass-lite0": tasks.CPU, "mobilenetv1": tasks.NNAPI,
		"mnist": tasks.CPU, "model-metadata": tasks.CPU, "model-metadata_2": tasks.CPU,
	}
	allN := alloc.Assignment{
		"mobilenetDetv1": tasks.NNAPI, "efficientclass-lite0": tasks.NNAPI, "mobilenetv1": tasks.NNAPI,
		"mnist": tasks.NNAPI, "model-metadata": tasks.NNAPI, "model-metadata_2": tasks.NNAPI,
	}

	hbo := fixedConfig(t, rt, hboAlloc, 0.72)
	smq := fixedConfig(t, rt, staticAlloc, 0.72)
	sml := fixedConfig(t, rt, staticAlloc, 0.5)
	bnt := fixedConfig(t, rt, bntAlloc, 1.0)
	alln := fixedConfig(t, rt, allN, 1.0)

	t.Logf("HBO : eps=%.3f Q=%.3f", hbo.Epsilon, hbo.Quality)
	t.Logf("SMQ : eps=%.3f Q=%.3f (paper: ~1.5x HBO latency)", smq.Epsilon, smq.Quality)
	t.Logf("SML : eps=%.3f Q=%.3f (paper: ~HBO latency, -14.5%% quality)", sml.Epsilon, sml.Quality)
	t.Logf("BNT : eps=%.3f Q=%.3f (paper: ~2.2x HBO latency)", bnt.Epsilon, bnt.Quality)
	t.Logf("AllN: eps=%.3f Q=%.3f (paper: ~3.5x HBO latency)", alln.Epsilon, alln.Quality)

	// Shape assertions (see EXPERIMENTS.md): HBO beats every baseline on
	// latency; the joint manipulation matters (BNT and AllN, which pin
	// x = 1, are clearly worse); SML only approaches HBO's latency by
	// giving up quality. One divergence from the paper is documented in
	// EXPERIMENTS.md: in our substrate BNT lands below SMQ (the paper has
	// SMQ < BNT), because static GPU-delegate placement is costlier under
	// the simulated render contention than the paper's phones exhibit.
	if !(hbo.Epsilon*1.3 < smq.Epsilon) {
		t.Errorf("HBO eps %.3f should clearly beat SMQ %.3f (paper: 1.5x)", hbo.Epsilon, smq.Epsilon)
	}
	if !(hbo.Epsilon*1.3 < bnt.Epsilon) {
		t.Errorf("HBO eps %.3f should clearly beat BNT %.3f (paper: 2.2x)", hbo.Epsilon, bnt.Epsilon)
	}
	if !(bnt.Epsilon < alln.Epsilon) {
		t.Errorf("BNT eps %.3f should beat AllN %.3f", bnt.Epsilon, alln.Epsilon)
	}
	if !(hbo.Quality > sml.Quality+0.03) {
		t.Errorf("HBO quality %.3f should beat SML %.3f at matched latency", hbo.Quality, sml.Quality)
	}
	if alln.Epsilon < 2*hbo.Epsilon {
		t.Errorf("AllN eps %.3f should be at least 2x HBO %.3f (paper: 3.5x)", alln.Epsilon, hbo.Epsilon)
	}
}
