package core_test

import (
	"errors"
	"fmt"
	"testing"

	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/mesh"
	"github.com/mar-hbo/hbo/internal/render"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
)

// flakyLOD wraps a real provider with scriptable failure and availability —
// a stand-in for the edge client under link faults.
type flakyLOD struct {
	inner     render.LODProvider
	fail      bool
	available bool
	calls     int
}

func (f *flakyLOD) Decimate(object string, ratio float64) (*mesh.Mesh, error) {
	f.calls++
	if f.fail {
		return nil, errors.New("flaky: injected provider failure")
	}
	return f.inner.Decimate(object, ratio)
}

func (f *flakyLOD) Available() bool { return f.available }

// shiftRatio applies a configuration whose triangle ratio differs enough
// from the current one that ApplyLOD must refetch geometry.
func shiftRatio(t *testing.T, rt *core.Runtime, x float64) {
	t.Helper()
	if _, err := rt.ApplyConfiguration([]float64{0.4, 0.3, 0.3}, x); err != nil {
		t.Fatal(err)
	}
}

func TestLODFallbackOnPrimaryFailure(t *testing.T) {
	built := buildScenario(t, scenario.SC2CF2(), 3)
	rt := built.Runtime
	primary := &flakyLOD{inner: render.NewLocalDecimator(built.Library), fail: true, available: true}
	rt.SetLODProvider(primary)
	rt.SetLocalFallback(render.NewLocalDecimator(built.Library))

	shiftRatio(t, rt, 0.5)
	if !rt.Degraded() {
		t.Fatal("failing primary did not mark the runtime degraded")
	}
	if rt.DegradedEvents() != 1 {
		t.Fatalf("degraded events = %d, want 1", rt.DegradedEvents())
	}
	m, err := rt.Measure(500)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Degraded {
		t.Fatal("measurement in degraded mode not flagged")
	}
	// Staying degraded across windows is one event, not one per window.
	shiftRatio(t, rt, 0.8)
	if rt.DegradedEvents() != 1 {
		t.Fatalf("degraded events after second failing window = %d, want 1", rt.DegradedEvents())
	}

	// Primary recovers: the next refetch clears degraded mode transparently.
	primary.fail = false
	shiftRatio(t, rt, 0.4)
	if rt.Degraded() {
		t.Fatal("runtime still degraded after primary recovery")
	}
	m, err = rt.Measure(500)
	if err != nil {
		t.Fatal(err)
	}
	if m.Degraded {
		t.Fatal("post-recovery measurement still flagged degraded")
	}
}

func TestLODUnavailablePrimarySkipped(t *testing.T) {
	built := buildScenario(t, scenario.SC2CF2(), 3)
	rt := built.Runtime
	// Unavailable AND failing: with the availability check honored, the
	// primary must not even be called.
	primary := &flakyLOD{inner: render.NewLocalDecimator(built.Library), fail: true, available: false}
	rt.SetLODProvider(primary)
	rt.SetLocalFallback(render.NewLocalDecimator(built.Library))
	shiftRatio(t, rt, 0.5)
	if primary.calls != 0 {
		t.Fatalf("unavailable primary was called %d times", primary.calls)
	}
	if !rt.Degraded() {
		t.Fatal("runtime not degraded while primary unavailable")
	}
}

func TestLODNoFallbackSurfacesError(t *testing.T) {
	built := buildScenario(t, scenario.SC2CF2(), 3)
	rt := built.Runtime
	rt.SetLODProvider(&flakyLOD{inner: render.NewLocalDecimator(built.Library), fail: true, available: true})
	if _, err := rt.ApplyConfiguration([]float64{0.4, 0.3, 0.3}, 0.5); err == nil {
		t.Fatal("failing primary without fallback did not error")
	}
}

// fakeBO is a scriptable remote BO backend.
type fakeBO struct {
	point     []float64
	err       error
	available bool
	calls     int
}

func (f *fakeBO) BONextPoint(resources int, rmin float64, seed uint64, points [][]float64, costs []float64) ([]float64, error) {
	f.calls++
	if f.err != nil {
		return nil, f.err
	}
	return f.point, nil
}

func (f *fakeBO) Available() bool { return f.available }

func fastConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.InitSamples = 2
	cfg.Iterations = 3
	cfg.PeriodMS = 500
	cfg.SettleMS = 100
	return cfg
}

func TestRemoteBOProposalsUsed(t *testing.T) {
	built := buildScenario(t, scenario.SC2CF2(), 5)
	remote := &fakeBO{point: []float64{0.5, 0.3, 0.2, 0.8}, available: true}
	built.Runtime.SetBOBackend(remote, 42)
	res, err := core.RunActivation(built.Runtime, fastConfig(), sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteProposals != 3 || res.FallbackProposals != 0 {
		t.Fatalf("proposals = %d remote / %d fallback, want 3/0", res.RemoteProposals, res.FallbackProposals)
	}
	if remote.calls != 3 {
		t.Fatalf("backend called %d times, want once per post-init iteration", remote.calls)
	}
	// The remote point must actually be the enforced configuration for
	// post-init iterations.
	for i := 2; i < len(res.Iterations); i++ {
		for d, v := range remote.point {
			if res.Iterations[i].Point[d] != v {
				t.Fatalf("iteration %d point %v, want remote %v", i, res.Iterations[i].Point, remote.point)
			}
		}
	}
}

func TestRemoteBOFallsBackLocally(t *testing.T) {
	for name, remote := range map[string]*fakeBO{
		"erroring":      {err: fmt.Errorf("link down"), available: true},
		"unavailable":   {point: []float64{0.5, 0.3, 0.2, 0.8}, available: false},
		"out-of-domain": {point: []float64{9, 9, 9, 9}, available: true},
		"wrong-dim":     {point: []float64{0.5, 0.5}, available: true},
	} {
		built := buildScenario(t, scenario.SC2CF2(), 5)
		built.Runtime.SetBOBackend(remote, 42)
		res, err := core.RunActivation(built.Runtime, fastConfig(), sim.NewRNG(5))
		if err != nil {
			t.Fatalf("%s backend aborted the activation: %v", name, err)
		}
		if res.RemoteProposals != 0 || res.FallbackProposals != 3 {
			t.Fatalf("%s: proposals = %d remote / %d fallback, want 0/3",
				name, res.RemoteProposals, res.FallbackProposals)
		}
		if name == "unavailable" && remote.calls != 0 {
			t.Fatalf("unavailable backend was still called %d times", remote.calls)
		}
	}
}

func TestActivationMatchesNoBackendRun(t *testing.T) {
	// A backend that always fails must leave the activation byte-identical
	// to a run with no backend at all: the local optimizer's draw sequence
	// is not perturbed by remote attempts.
	base := buildScenario(t, scenario.SC2CF2(), 7)
	resBase, err := core.RunActivation(base.Runtime, fastConfig(), sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	faulty := buildScenario(t, scenario.SC2CF2(), 7)
	faulty.Runtime.SetBOBackend(&fakeBO{err: fmt.Errorf("down"), available: true}, 42)
	resFaulty, err := core.RunActivation(faulty.Runtime, fastConfig(), sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(resBase.Iterations) != len(resFaulty.Iterations) {
		t.Fatal("iteration counts differ")
	}
	for i := range resBase.Iterations {
		for d := range resBase.Iterations[i].Point {
			if resBase.Iterations[i].Point[d] != resFaulty.Iterations[i].Point[d] {
				t.Fatalf("iteration %d diverged: %v vs %v",
					i, resBase.Iterations[i].Point, resFaulty.Iterations[i].Point)
			}
		}
	}
}

func TestSessionCountsDegradedWindows(t *testing.T) {
	spec := scenario.SC2CF2()
	built := buildScenario(t, spec, 11)
	rt := built.Runtime
	primary := &flakyLOD{inner: render.NewLocalDecimator(built.Library), fail: true, available: true}
	rt.SetLODProvider(primary)
	rt.SetLocalFallback(render.NewLocalDecimator(built.Library))
	s, err := core.NewSession(rt, sessionConfig(core.EventBased), sim.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(30000); err != nil {
		t.Fatalf("degraded session errored: %v", err)
	}
	if s.DegradedWindows() == 0 {
		t.Fatal("no degraded windows recorded under a failing primary")
	}
	flagged := 0
	for _, smp := range s.Samples() {
		if smp.Degraded {
			flagged++
		}
	}
	if flagged != s.DegradedWindows() {
		t.Fatalf("counter %d != flagged samples %d", s.DegradedWindows(), flagged)
	}
}
