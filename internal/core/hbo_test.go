package core_test

import (
	"math"
	"testing"

	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/render"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/tasks"
)

func buildScenario(t *testing.T, spec scenario.Spec, seed uint64) *scenario.Built {
	t.Helper()
	built, err := spec.Build(seed)
	if err != nil {
		t.Fatal(err)
	}
	return built
}

func TestMeasureProducesSaneValues(t *testing.T) {
	built := buildScenario(t, scenario.SC2CF2(), 1)
	m, err := built.Runtime.Measure(3000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Quality <= 0 || m.Quality > 1 {
		t.Fatalf("quality = %v", m.Quality)
	}
	if m.Epsilon < 0 || math.IsNaN(m.Epsilon) {
		t.Fatalf("epsilon = %v", m.Epsilon)
	}
	if len(m.PerTaskLatency) != 3 {
		t.Fatalf("per-task latencies: %d, want 3", len(m.PerTaskLatency))
	}
	// Reward/cost relationship.
	w := 2.5
	if got := m.Cost(w); math.Abs(got+m.Reward(w)) > 1e-12 {
		t.Fatalf("cost %v != -reward %v", got, -m.Reward(w))
	}
	if _, err := built.Runtime.Measure(0); err == nil {
		t.Fatal("zero-length measurement accepted")
	}
}

func TestApplyConfigurationRoundTrip(t *testing.T) {
	built := buildScenario(t, scenario.SC2CF2(), 1)
	rt := built.Runtime
	a, err := rt.ApplyConfiguration([]float64{1, 0, 0}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 {
		t.Fatalf("assignment has %d tasks", len(a))
	}
	for id, r := range a {
		if r != tasks.CPU {
			t.Errorf("task %s on %s, want CPU", id, r)
		}
		got, err := rt.Sys.Allocation(id)
		if err != nil {
			t.Fatal(err)
		}
		if got != r {
			t.Errorf("system reports %s for %s, want %s", got, id, r)
		}
	}
	if ratio := rt.Scene.TotalRatio(); math.Abs(ratio-0.5) > 0.03 {
		t.Fatalf("scene ratio %v after x=0.5", ratio)
	}
}

func TestConfigValidate(t *testing.T) {
	good := core.DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*core.Config){
		"negative weight": func(c *core.Config) { c.Weight = -1 },
		"bad rmin":        func(c *core.Config) { c.RMin = 1 },
		"zero iters":      func(c *core.Config) { c.Iterations = 0 },
		"zero period":     func(c *core.Config) { c.PeriodMS = 0 },
	} {
		c := core.DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestRunActivationConverges(t *testing.T) {
	built := buildScenario(t, scenario.SC2CF2(), 7)
	cfg := core.DefaultConfig()
	res, err := core.RunActivation(built.Runtime, cfg, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != cfg.InitSamples+cfg.Iterations {
		t.Fatalf("%d iterations recorded, want %d", len(res.Iterations), cfg.InitSamples+cfg.Iterations)
	}
	// Best-cost trajectory is non-increasing.
	traj := res.BestCostTrajectory()
	for i := 1; i < len(traj); i++ {
		if traj[i] > traj[i-1]+1e-12 {
			t.Fatalf("best-cost trajectory increased at %d: %v -> %v", i, traj[i-1], traj[i])
		}
	}
	// The final enforced configuration matches the best iteration.
	if res.Cost != res.Iterations[res.BestIndex].Cost {
		t.Fatal("result cost does not echo best iteration")
	}
	if res.Ratio < cfg.RMin || res.Ratio > 1 {
		t.Fatalf("final ratio %v out of bounds", res.Ratio)
	}
	if len(res.Assignment) != 3 {
		t.Fatalf("final assignment covers %d tasks", len(res.Assignment))
	}
	// SC2-CF2 is the paper's least-contended scenario: the found reward
	// should be clearly positive and the best solution should keep most
	// object quality (paper: ratio 0.94, all tasks on NNAPI).
	if -res.Cost < 0.3 {
		t.Errorf("best reward %v too low for SC2-CF2", -res.Cost)
	}
	if res.Ratio < 0.5 {
		t.Errorf("SC2-CF2 should not need heavy decimation, got ratio %v", res.Ratio)
	}
	if res.Quality < 0.8 {
		t.Errorf("SC2-CF2 quality %v, want >= 0.8", res.Quality)
	}
}

func TestRunActivationBeatsStartingPoint(t *testing.T) {
	built := buildScenario(t, scenario.SC1CF1(), 3)
	rt := built.Runtime
	// Starting point: every task on its isolation-best resource, full
	// triangles — the natural app default.
	before, err := rt.Measure(4000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	res, err := core.RunActivation(rt, cfg, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	after, err := rt.Measure(4000)
	if err != nil {
		t.Fatal(err)
	}
	w := cfg.Weight
	if after.Reward(w) <= before.Reward(w) {
		t.Errorf("HBO did not improve reward: %.3f -> %.3f", before.Reward(w), after.Reward(w))
	}
	if res.Ratio > 0.98 {
		t.Errorf("SC1-CF1 should reduce triangles (paper: 0.72), got %v", res.Ratio)
	}
	t.Logf("SC1-CF1: reward %.3f -> %.3f, ratio %.2f, eps %.3f, Q %.3f, alloc %v",
		before.Reward(w), after.Reward(w), res.Ratio, res.Epsilon, res.Quality, res.Assignment)
}

func TestInputDistances(t *testing.T) {
	built := buildScenario(t, scenario.SC2CF2(), 5)
	cfg := core.DefaultConfig()
	cfg.InitSamples = 2
	cfg.Iterations = 3
	res, err := core.RunActivation(built.Runtime, cfg, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	d := res.InputDistances()
	if len(d) != 4 {
		t.Fatalf("got %d distances, want 4", len(d))
	}
	for _, v := range d {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("bad distance %v", v)
		}
	}
}

func TestMonitorThresholds(t *testing.T) {
	m, err := core.NewMonitor(0.05, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !m.ShouldActivate(0.5) {
		t.Fatal("monitor without reference must always activate")
	}
	m.SetReference(1.0)
	cases := []struct {
		b    float64
		want bool
	}{
		{1.0, false},
		{1.03, false}, // +3% < +5%
		{1.06, true},  // +6% >= +5%
		{0.95, false}, // -5% > -10%
		{0.89, true},  // -11% <= -10%
	}
	for _, c := range cases {
		if got := m.ShouldActivate(c.b); got != c.want {
			t.Errorf("ShouldActivate(%v) = %v, want %v", c.b, got, c.want)
		}
	}
	// Near-zero reference uses the absolute floor.
	m.SetReference(0.0)
	if m.ShouldActivate(0.004) {
		t.Error("tiny drift near zero reference should not trigger")
	}
	if !m.ShouldActivate(0.02) {
		t.Error("drift beyond floor-scaled threshold should trigger")
	}
	if _, err := core.NewMonitor(0, 0.1); err == nil {
		t.Fatal("zero threshold accepted")
	}
}

func TestLookupTable(t *testing.T) {
	built := buildScenario(t, scenario.SC2CF2(), 9)
	tab := core.NewLookupTable()
	key := core.Key(built.Runtime)
	if _, ok := tab.Find(key); ok {
		t.Fatal("empty table found an entry")
	}
	point := []float64{0.2, 0.2, 0.6, 0.9}
	tab.Store(key, core.LookupEntry{Point: point, Reward: 0.5})
	got, ok := tab.Find(key)
	if !ok {
		t.Fatal("stored entry not found")
	}
	point[0] = 99 // the table must have copied
	if got.Point[0] == 99 {
		t.Fatal("lookup table aliases caller's slice")
	}
	if tab.Len() != 1 {
		t.Fatalf("table len %d", tab.Len())
	}
	// A different environment (object removed) yields a different key.
	if err := built.Scene.Remove("cabin"); err != nil {
		t.Fatal(err)
	}
	if core.Key(built.Runtime) == key {
		t.Fatal("environment key did not change with scene")
	}
}

func TestActivationWithLODProvider(t *testing.T) {
	built := buildScenario(t, scenario.SC2CF2(), 21)
	dec := render.NewLocalDecimator(built.Library)
	built.Runtime.SetLODProvider(dec)
	cfg := core.DefaultConfig()
	cfg.InitSamples = 3
	cfg.Iterations = 4
	res, err := core.RunActivation(built.Runtime, cfg, sim.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	// Every object carries real decimated geometry matching its ratio.
	for _, o := range built.Scene.Objects() {
		if o.Geometry == nil {
			t.Fatalf("object %s has no geometry after optimized activation", o.ID())
		}
		if err := o.Geometry.Validate(); err != nil {
			t.Fatal(err)
		}
		if math.Abs(o.GeometryRatio-o.Ratio()) > 0.05 {
			t.Errorf("object %s geometry ratio %.2f vs target %.2f", o.ID(), o.GeometryRatio, o.Ratio())
		}
	}
	_ = res
}

func TestDeadlineMissRate(t *testing.T) {
	built := buildScenario(t, scenario.SC1CF1(), 27)
	// Default start (static-best, full triangles) saturates the SoC: a
	// large share of inferences must miss their 100 ms issue deadline.
	m, err := built.Runtime.Measure(4000)
	if err != nil {
		t.Fatal(err)
	}
	if m.DeadlineMissRate < 0.2 {
		t.Errorf("saturated start miss rate %.2f, want substantial", m.DeadlineMissRate)
	}
	// HBO's solution should all but eliminate misses.
	if _, err := core.RunActivation(built.Runtime, core.DefaultConfig(), sim.NewRNG(27)); err != nil {
		t.Fatal(err)
	}
	after, err := built.Runtime.Measure(4000)
	if err != nil {
		t.Fatal(err)
	}
	if after.DeadlineMissRate >= m.DeadlineMissRate/2 {
		t.Errorf("miss rate %.2f -> %.2f, want clear reduction", m.DeadlineMissRate, after.DeadlineMissRate)
	}
	if after.DeadlineMissRate < 0 || after.DeadlineMissRate > 1 {
		t.Errorf("miss rate %v out of [0,1]", after.DeadlineMissRate)
	}
}
