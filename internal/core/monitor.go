package core

import (
	"fmt"
	"math"
)

// Monitor implements the event-based activation policy of §IV-E: it holds
// the reference reward recorded after the last activation and reports when
// the observed reward drifts past the tunable increase/decrease thresholds.
type Monitor struct {
	increase float64
	decrease float64
	ref      float64
	hasRef   bool
}

// NewMonitor builds a monitor with the given drift thresholds (the paper
// uses +5% / −10%).
func NewMonitor(increase, decrease float64) (*Monitor, error) {
	if increase <= 0 || decrease <= 0 {
		return nil, fmt.Errorf("core: monitor thresholds must be positive, got %v/%v", increase, decrease)
	}
	return &Monitor{increase: increase, decrease: decrease}, nil
}

// SetReference records the reward obtained by the last activation; future
// drift is measured against it.
func (m *Monitor) SetReference(b float64) {
	m.ref = b
	m.hasRef = true
}

// HasReference reports whether an activation has ever set a reference.
func (m *Monitor) HasReference() bool { return m.hasRef }

// Reference returns the current reference reward.
func (m *Monitor) Reference() float64 { return m.ref }

// ShouldActivate reports whether the observed reward b has drifted enough
// from the reference to warrant a new activation. With no reference yet it
// always triggers (the paper's "first object placement" activation).
// Because B = Q − w·ε can be near zero or negative, drift is normalized by
// max(|reference|, 0.1).
func (m *Monitor) ShouldActivate(b float64) bool {
	if !m.hasRef {
		return true
	}
	scale := math.Abs(m.ref)
	if scale < 0.1 {
		scale = 0.1
	}
	drift := (b - m.ref) / scale
	return drift >= m.increase || drift <= -m.decrease
}

// EnvironmentKey buckets the scene/taskset conditions the §VI lookup-table
// extension matches on: maximum triangle count, average distance, and task
// configuration.
type EnvironmentKey struct {
	Taskset string
	// TriBucket is log2 of the total maximum triangle count.
	TriBucket int
	// DistBucket is the average user-object distance in 0.5 m buckets.
	DistBucket int
	// Objects is the on-screen object count.
	Objects int
}

// String renders the key compactly for event details and diagnostics.
func (k EnvironmentKey) String() string {
	return fmt.Sprintf("%s/tri%d/dist%d/obj%d", k.Taskset, k.TriBucket, k.DistBucket, k.Objects)
}

// LookupEntry is one remembered solution.
type LookupEntry struct {
	Point  []float64
	Reward float64
}

// LookupTable is the §VI future-work extension: remember the solution found
// for an environment and reuse it when conditions recur, skipping a full
// (and user-visible) Bayesian exploration.
type LookupTable struct {
	entries map[EnvironmentKey]LookupEntry
}

// NewLookupTable returns an empty table.
func NewLookupTable() *LookupTable {
	return &LookupTable{entries: make(map[EnvironmentKey]LookupEntry)}
}

// Key derives the environment key for a runtime's current conditions.
func Key(rt *Runtime) EnvironmentKey {
	k := EnvironmentKey{Taskset: rt.Taskset.Name, Objects: rt.Scene.Len()}
	if t := rt.Scene.TotalMaxTriangles(); t > 0 {
		k.TriBucket = int(math.Log2(float64(t)))
	}
	if rt.Scene.Len() > 0 {
		sum := 0.0
		for _, o := range rt.Scene.Objects() {
			sum += o.Distance
		}
		k.DistBucket = int(sum / float64(rt.Scene.Len()) / 0.5)
	}
	return k
}

// Store remembers the solution for the environment.
func (t *LookupTable) Store(k EnvironmentKey, e LookupEntry) {
	cp := e
	cp.Point = append([]float64(nil), e.Point...)
	t.entries[k] = cp
}

// Find returns the remembered solution for the environment, if any.
func (t *LookupTable) Find(k EnvironmentKey) (LookupEntry, bool) {
	e, ok := t.entries[k]
	return e, ok
}

// Len returns the number of remembered environments.
func (t *LookupTable) Len() int { return len(t.entries) }

// Entries returns a copy of the table's contents for persistence.
func (t *LookupTable) Entries() map[EnvironmentKey]LookupEntry {
	out := make(map[EnvironmentKey]LookupEntry, len(t.entries))
	for k, e := range t.entries {
		cp := e
		cp.Point = append([]float64(nil), e.Point...)
		out[k] = cp
	}
	return out
}
