package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(10)
	g.Set(3)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil instruments returned non-zero values")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", LatencyBucketsMS) != nil {
		t.Fatal("nil registry handed out live instruments")
	}
	r.Emit(Event{Kind: "x"})
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Events) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

// TestHotPathsDoNotAllocate pins the tentpole's zero-overhead contract: both
// the disabled (nil) and the live instrument paths must be allocation-free.
func TestHotPathsDoNotAllocate(t *testing.T) {
	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() {
		nilC.Inc()
		nilC.Add(2)
		nilG.Set(1.5)
		nilH.Observe(3)
	}); n != 0 {
		t.Fatalf("nil instrument path allocates %v times per op", n)
	}
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", LatencyBucketsMS)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(1.5)
		h.Observe(3)
	}); n != 0 {
		t.Fatalf("live instrument path allocates %v times per op", n)
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := New()
	c := r.Counter("hits")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("hits") != c {
		t.Fatal("same name returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(7.5)
	g.Set(-2)
	if g.Value() != -2 {
		t.Fatalf("gauge = %v, want -2", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	wantCounts := []uint64{2, 1, 1, 2} // <=1, <=10, <=100, overflow
	if len(s.Counts) != len(wantCounts) {
		t.Fatalf("bucket count %d, want %d", len(s.Counts), len(wantCounts))
	}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count %d, want 6", s.Count)
	}
	wantSum := 0.5 + 1 + 5 + 50 + 500 + 5000
	if s.Sum != wantSum {
		t.Fatalf("sum %v, want %v", s.Sum, wantSum)
	}
	if got := s.Mean(); got != wantSum/6 {
		t.Fatalf("mean %v, want %v", got, wantSum/6)
	}
}

func TestEventRingWrapsAndCountsDrops(t *testing.T) {
	r := NewWithCapacity(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{TimeMS: float64(i), Kind: "tick"})
	}
	s := r.Snapshot()
	if len(s.Events) != 3 {
		t.Fatalf("ring kept %d events, want 3", len(s.Events))
	}
	// The oldest two dropped; the rest must be in chronological order.
	for i, ev := range s.Events {
		if ev.TimeMS != float64(i+2) {
			t.Fatalf("event %d at t=%v, want %v", i, ev.TimeMS, float64(i+2))
		}
	}
	if s.DroppedEvents != 2 {
		t.Fatalf("dropped %d, want 2", s.DroppedEvents)
	}
	// Capacity 0 disables the tap entirely.
	r0 := NewWithCapacity(0)
	r0.Emit(Event{Kind: "x"})
	if s := r0.Snapshot(); len(s.Events) != 0 || s.DroppedEvents != 0 {
		t.Fatal("zero-capacity tap recorded events")
	}
}

func TestSnapshotJSONIsDeterministic(t *testing.T) {
	build := func() *Registry {
		r := New()
		r.Counter("b").Add(2)
		r.Counter("a").Inc()
		r.Gauge("z").Set(1)
		r.Histogram("h", RewardBuckets).Observe(0.5)
		r.Emit(Event{TimeMS: 1, Kind: "k", Detail: "d", Value: 2})
		return r
	}
	var bufA, bufB bytes.Buffer
	if err := build().Snapshot().WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := build().Snapshot().WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", bufA.Bytes(), bufB.Bytes())
	}
	var round Snapshot
	if err := json.Unmarshal(bufA.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if round.Counters["a"] != 1 || round.Counters["b"] != 2 {
		t.Fatalf("round-tripped counters %v", round.Counters)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("lat", LatencyBucketsMS)
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 7))
				r.Gauge(fmt.Sprintf("g%d", w)).Set(float64(i))
				if i%100 == 0 {
					r.Emit(Event{TimeMS: float64(i), Kind: "w"})
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["shared"] != 8000 {
		t.Fatalf("shared counter %d, want 8000", s.Counters["shared"])
	}
	if s.Histograms["lat"].Count != 8000 {
		t.Fatalf("histogram count %d, want 8000", s.Histograms["lat"].Count)
	}
}

func TestDefaultRegistry(t *testing.T) {
	if Default() != nil {
		t.Fatal("default registry should start nil")
	}
	r := New()
	SetDefault(r)
	defer SetDefault(nil)
	if Default() != r {
		t.Fatal("SetDefault did not install the registry")
	}
}
