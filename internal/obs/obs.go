// Package obs is the reproduction's observability layer: a lightweight,
// allocation-conscious metrics registry (counters, gauges, histograms with
// fixed bucket layouts) plus a bounded structured event tap.
//
// The design constraint that shapes everything here is the simulator's hot
// loop: instrumentation must cost nothing when disabled and must never
// perturb determinism when enabled. Both follow from the same idiom —
// components hold concrete *Counter/*Gauge/*Histogram pointers obtained once
// at setup (nil when no registry is attached), and every method is a nil-safe
// no-op. There are no interface calls on the hot path, no map lookups, no
// allocations, and no reads of the wall clock or any RNG: metrics are pure
// observers, so golden outputs are byte-identical with observability on or
// off.
//
// Instruments are safe for concurrent use (the edge client and server share
// one registry across goroutines); the registry itself serializes
// registration and event emission behind a mutex, which only rare paths
// (setup, breaker transitions, activations) touch.
package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The zero value is NOT
// usable — obtain counters from a Registry; a nil *Counter is a no-op, which
// is the disabled fast path.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (zero for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float value (queue depth, GP size, temperature).
// A nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (zero for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into a fixed bucket layout chosen at
// registration. Buckets are cumulative-upper-bound style: bucket i counts
// observations v <= Bounds[i], with an implicit +Inf overflow bucket. A nil
// *Histogram is a no-op.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// LatencyBucketsMS is the default bucket layout for millisecond latencies,
// covering sub-millisecond scheduling delays up to multi-second stalls.
var LatencyBucketsMS = []float64{0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}

// RewardBuckets is the default layout for the dimensionless reward/cost
// range the controller operates in.
var RewardBuckets = []float64{-2, -1, -0.5, -0.2, 0, 0.2, 0.4, 0.6, 0.8, 1}

// Observe records one sample. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for ; i < len(h.bounds); i++ {
		if v <= h.bounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra trailing
	// entry for the overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean returns the running mean of all observations (zero when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts: the
// upper bound of the first bucket whose cumulative count reaches q·Count.
// Samples beyond the last bound report +Inf; an empty histogram reports 0.
// Bucket-resolution accuracy only — good enough for tail-latency reporting.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Event is one structured occurrence on the event tap: breaker transitions,
// activation boundaries, degraded-window edges. TimeMS is virtual simulation
// time for in-sim emitters and wall-clock Unix milliseconds for the edge
// processes; the Kind namespace keeps the two apart.
type Event struct {
	TimeMS float64 `json:"t_ms"`
	Kind   string  `json:"kind"`
	Detail string  `json:"detail,omitempty"`
	Value  float64 `json:"value,omitempty"`
}

// DefaultMaxEvents bounds the event tap: a ring of the most recent events,
// with a drop counter so truncation is visible rather than silent.
const DefaultMaxEvents = 4096

// Registry is a named collection of instruments plus the event tap. The nil
// registry is fully usable and free: every lookup returns nil, every nil
// instrument is a no-op.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	events    []Event
	head      int // next write position once the ring is full
	wrapped   bool
	maxEvents int
	dropped   uint64
}

// New returns an empty registry with the default event-tap bound.
func New() *Registry { return NewWithCapacity(DefaultMaxEvents) }

// NewWithCapacity returns a registry whose event tap keeps at most maxEvents
// recent events (0 disables the tap entirely).
func NewWithCapacity(maxEvents int) *Registry {
	if maxEvents < 0 {
		maxEvents = 0
	}
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		maxEvents:  maxEvents,
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry — the disabled fast path.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (nil on a nil registry). Bounds must be sorted
// ascending; later registrations of the same name reuse the first layout.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
		r.histograms[name] = h
	}
	return h
}

// Emit appends an event to the tap, dropping the oldest once the ring is
// full. No-op on a nil registry.
func (r *Registry) Emit(ev Event) {
	if r == nil || r.maxEvents == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.events) < r.maxEvents {
		r.events = append(r.events, ev)
		return
	}
	r.events[r.head] = ev
	r.head = (r.head + 1) % r.maxEvents
	r.wrapped = true
	r.dropped++
}

// Snapshot is a point-in-time, JSON-marshalable copy of the registry.
// encoding/json sorts map keys, so marshaling a snapshot is deterministic
// given deterministic instrument values.
type Snapshot struct {
	Counters      map[string]uint64            `json:"counters,omitempty"`
	Gauges        map[string]float64           `json:"gauges,omitempty"`
	Histograms    map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Events        []Event                      `json:"events,omitempty"`
	DroppedEvents uint64                       `json:"dropped_events,omitempty"`
}

// Snapshot copies the registry's current state. A nil registry yields the
// zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:      make(map[string]uint64, len(r.counters)),
		Gauges:        make(map[string]float64, len(r.gauges)),
		Histograms:    make(map[string]HistogramSnapshot, len(r.histograms)),
		DroppedEvents: r.dropped,
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	// Unroll the ring into chronological order.
	if r.wrapped {
		s.Events = make([]Event, 0, len(r.events))
		s.Events = append(s.Events, r.events[r.head:]...)
		s.Events = append(s.Events, r.events[:r.head]...)
	} else {
		s.Events = append(s.Events, r.events...)
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON — the payload of the edge
// server's /metricsz endpoint and the CLIs' -metrics dumps.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Publish registers the registry under name in the process's expvar space,
// so /debug/vars exposes a live snapshot alongside the runtime's memstats.
// Like expvar.Publish it must be called at most once per name.
func Publish(name string, r *Registry) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// defaultRegistry is the process-wide registry the CLIs opt into with their
// -metrics flags; scenario.Build wires it through every layer it assembles.
// It is nil — observability disabled, the zero-overhead path — unless
// SetDefault is called, and is meant to be set once during process startup,
// before any simulation is built.
var defaultRegistry atomic.Pointer[Registry]

// SetDefault installs the process-wide default registry.
func SetDefault(r *Registry) { defaultRegistry.Store(r) }

// Default returns the process-wide registry, or nil when observability is
// disabled.
func Default() *Registry { return defaultRegistry.Load() }
