package userstudy

import (
	"testing"
	"testing/quick"
)

func TestPanelScoresInRange(t *testing.T) {
	p, err := NewPanel(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 7 {
		t.Fatalf("panel size %d", p.Size())
	}
	f := func(qRaw uint16) bool {
		q := float64(qRaw) / 65535
		for _, s := range p.Scores(q) {
			if s < 1 || s > 5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPanelMonotoneInQuality(t *testing.T) {
	p, err := NewPanel(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	low := p.MeanScore(0.6)
	high := p.MeanScore(0.95)
	if high <= low {
		t.Fatalf("higher quality scored lower: %v vs %v", high, low)
	}
}

func TestPanelEndpoints(t *testing.T) {
	p, err := NewPanel(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Max quality should read as near-reference (paper: HBO scores ~4.9-5).
	if s := p.MeanScore(1.0); s < 4.6 {
		t.Fatalf("perfect quality MOS = %v, want ~5", s)
	}
	// Heavily degraded quality should read clearly lower (paper: SML ~3).
	if s := p.MeanScore(0.68); s < 2.0 || s > 3.8 {
		t.Fatalf("degraded quality MOS = %v, want ~3", s)
	}
	if s := p.MeanScore(0.2); s > 1.8 {
		t.Fatalf("terrible quality MOS = %v, want ~1", s)
	}
}

func TestPanelDeterministicPerSeed(t *testing.T) {
	a, err := NewPanel(5, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPanel(5, 9)
	if err != nil {
		t.Fatal(err)
	}
	sa := a.Scores(0.8)
	sb := b.Scores(0.8)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("same-seed panels disagree")
		}
	}
}

func TestNewPanelValidation(t *testing.T) {
	if _, err := NewPanel(0, 1); err == nil {
		t.Fatal("empty panel accepted")
	}
}
