// Package userstudy simulates the paper's §V-E user study: a small panel of
// raters scores the perceived quality of the rendered scene on a 1–5 scale
// against a max-quality reference. The paper's own §III-A validation — that
// the GMSD-based degradation model of Eq. 1 tracks real users' perception —
// is what licenses driving simulated raters from the scene's ground-truth
// quality (see DESIGN.md §2).
package userstudy

import (
	"fmt"

	"github.com/mar-hbo/hbo/internal/sim"
)

// perceptionFloor and perceptionCeil map true scene quality onto the score
// scale: quality at or below the floor reads as "much worse than the
// reference" (score 1), quality at or above the ceiling is indistinguishable
// from the reference (score 5). Between them perception is linear, matching
// the coarse resolution of a 5-point scale.
const (
	perceptionFloor = 0.45
	perceptionCeil  = 0.94
)

// Rater is one simulated study participant with a stable personal bias and
// per-judgment noise.
type Rater struct {
	Bias  float64
	noise float64
	rng   *sim.RNG
}

// Score rates the true scene quality on the 1–5 scale.
func (r *Rater) Score(trueQuality float64) float64 {
	f := (trueQuality - perceptionFloor) / (perceptionCeil - perceptionFloor)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	s := 1 + 4*f + r.Bias + r.noise*r.rng.Norm()
	if s < 1 {
		s = 1
	}
	if s > 5 {
		s = 5
	}
	return s
}

// Panel is a group of raters (the paper uses seven students).
type Panel struct {
	raters []*Rater
}

// NewPanel builds n raters with deterministic per-rater biases drawn from
// the seed.
func NewPanel(n int, seed uint64) (*Panel, error) {
	if n < 1 {
		return nil, fmt.Errorf("userstudy: panel needs at least one rater, got %d", n)
	}
	rng := sim.NewRNG(seed)
	p := &Panel{raters: make([]*Rater, n)}
	for i := range p.raters {
		p.raters[i] = &Rater{
			Bias:  0.15 * rng.Norm(),
			noise: 0.15,
			rng:   rng.Split(),
		}
	}
	return p, nil
}

// Size returns the number of raters.
func (p *Panel) Size() int { return len(p.raters) }

// Scores collects each rater's score for the condition.
func (p *Panel) Scores(trueQuality float64) []float64 {
	out := make([]float64, len(p.raters))
	for i, r := range p.raters {
		out[i] = r.Score(trueQuality)
	}
	return out
}

// MeanScore returns the panel's mean opinion score for the condition.
func (p *Panel) MeanScore(trueQuality float64) float64 {
	sum := 0.0
	for _, s := range p.Scores(trueQuality) {
		sum += s
	}
	return sum / float64(len(p.raters))
}
