// Package alloc implements the heuristic half of the paper's HBO algorithm
// (Algorithm 1): translating the Bayesian optimizer's fractional per-resource
// proportions into an integer per-task allocation via a latency-sorted
// priority queue (lines 2–22), and distributing the chosen total triangle
// budget across virtual objects by degradation sensitivity (the TD function
// of line 23).
package alloc

import (
	"fmt"
	"math"
	"sort"

	"github.com/mar-hbo/hbo/internal/render"
	"github.com/mar-hbo/hbo/internal/soc"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// Counts maps the fractional resource-usage vector c onto integer task
// counts per resource (Algorithm 1, lines 2–12): floor each share, then hand
// the rounding remainder to the resources with the highest usage first.
func Counts(c []float64, m int) ([]int, error) {
	if m < 0 {
		return nil, fmt.Errorf("alloc: negative task count %d", m)
	}
	sum := 0.0
	for _, v := range c {
		if v < -1e-9 || math.IsNaN(v) {
			return nil, fmt.Errorf("alloc: invalid proportion vector %v", c)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return nil, fmt.Errorf("alloc: proportions sum to %v, want 1", sum)
	}
	counts := make([]int, len(c))
	total := 0
	for i, v := range c {
		counts[i] = int(v * float64(m))
		total += counts[i]
	}
	r := m - total
	if r > 0 {
		// Indexes sorted by non-increasing usage; ties broken by index for
		// determinism.
		order := make([]int, len(c))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return c[order[a]] > c[order[b]] })
		for _, i := range order {
			if r <= 0 {
				break
			}
			counts[i]++
			r--
		}
	}
	return counts, nil
}

// Assignment maps task ID to the chosen resource.
type Assignment map[string]tasks.Resource

// Assign performs the greedy priority-queue allocation of Algorithm 1,
// lines 13–22: repeatedly take the globally lowest-latency (task, resource)
// pair; if the resource still has capacity in counts, commit it and retire
// the task, otherwise retire the resource.
//
// The paper's pseudo-code can strand tasks when capacity remains only on
// resources a task does not support (NNAPI "NA" models) — the queue drains
// with k < M. Assign finishes with a repair pass: each stranded task takes
// its lowest-latency resource that still has capacity, or failing that its
// best supported resource outright, so exactly len(ids) tasks are always
// placed.
func Assign(counts []int, prof *soc.Profile, ids []string) (Assignment, error) {
	if len(counts) != tasks.NumResources {
		return nil, fmt.Errorf("alloc: counts has %d entries, want %d", len(counts), tasks.NumResources)
	}
	capacity := 0
	for _, v := range counts {
		if v < 0 {
			return nil, fmt.Errorf("alloc: negative capacity in %v", counts)
		}
		capacity += v
	}
	if capacity != len(ids) {
		return nil, fmt.Errorf("alloc: counts total %d but %d tasks", capacity, len(ids))
	}
	wanted := make(map[string]struct{}, len(ids))
	for _, id := range ids {
		if _, dup := wanted[id]; dup {
			return nil, fmt.Errorf("alloc: duplicate task ID %s", id)
		}
		wanted[id] = struct{}{}
	}

	remaining := append([]int(nil), counts...)
	out := make(Assignment, len(ids))
	retiredResource := make(map[tasks.Resource]bool)

	// prof.Entries is sorted by non-decreasing latency: walking it in order
	// with skip sets is equivalent to polling the paper's binary heap.
	for _, e := range prof.Entries {
		if len(out) == len(ids) {
			break
		}
		if _, ok := wanted[e.TaskID]; !ok {
			continue // not in this taskset
		}
		if _, done := out[e.TaskID]; done {
			continue // task retired (line 20)
		}
		if retiredResource[e.Resource] {
			continue // resource retired (line 22)
		}
		if remaining[e.Resource] == 0 {
			retiredResource[e.Resource] = true
			continue
		}
		out[e.TaskID] = e.Resource
		remaining[e.Resource]--
	}

	// Repair pass for stranded tasks.
	for _, id := range ids {
		if _, done := out[id]; done {
			continue
		}
		r, err := bestWithCapacity(prof, id, remaining)
		if err != nil {
			return nil, err
		}
		out[id] = r
		if remaining[r] > 0 {
			remaining[r]--
		}
	}
	return out, nil
}

// bestWithCapacity returns the task's lowest-latency supported resource that
// still has capacity, falling back to its overall best supported resource.
func bestWithCapacity(prof *soc.Profile, id string, remaining []int) (tasks.Resource, error) {
	fallback := tasks.Resource(-1)
	for _, e := range prof.Entries {
		if e.TaskID != id {
			continue
		}
		if fallback < 0 {
			fallback = e.Resource
		}
		if remaining[e.Resource] > 0 {
			return e.Resource, nil
		}
	}
	if fallback < 0 {
		return 0, fmt.Errorf("alloc: task %s has no profiled resource", id)
	}
	return fallback, nil
}

// ReferenceRatio is the common decimation ratio at which each object's
// degradation sensitivity is probed for TD weighting.
const ReferenceRatio = 0.3

// minObjectRatio keeps every object above a floor so nothing vanishes from
// the scene even under an aggressive total budget.
const minObjectRatio = 0.05

// DistributeTrianglesUniform is the ablation counterpart of TD: every object
// gets the same decimation ratio regardless of its degradation sensitivity
// or distance. Comparing Eq. 2 quality under the two policies isolates the
// value of the paper's sensitivity weighting (experiments.RunTDStudy).
func DistributeTrianglesUniform(objs []*render.Object, totalRatio float64) error {
	if totalRatio < 0 || totalRatio > 1 || math.IsNaN(totalRatio) {
		return fmt.Errorf("alloc: total triangle ratio %v out of [0,1]", totalRatio)
	}
	for _, o := range objs {
		t := int(math.Round(totalRatio * float64(o.Spec.MaxTriangles)))
		if t < 1 {
			t = 1
		}
		o.Triangles = t
	}
	return nil
}

// DistributeTriangles implements TD (Algorithm 1, line 23): split the total
// triangle budget totalRatio·T^max across the scene's objects, weighting by
// each object's degradation sensitivity — the gap between its degradation at
// the reference ratio and at full quality, at its current distance — so
// close-by or detail-heavy objects keep more triangles. Water-filling
// respects each object's [minObjectRatio, 1] range while conserving the
// budget.
func DistributeTriangles(objs []*render.Object, totalRatio float64) error {
	if len(objs) == 0 {
		return nil
	}
	if totalRatio < 0 || totalRatio > 1 || math.IsNaN(totalRatio) {
		return fmt.Errorf("alloc: total triangle ratio %v out of [0,1]", totalRatio)
	}
	totalMax := 0
	for _, o := range objs {
		totalMax += o.Spec.MaxTriangles
	}
	budget := totalRatio * float64(totalMax)

	type entry struct {
		obj    *render.Object
		weight float64 // sensitivity-scaled size
		min    float64
		max    float64
	}
	entries := make([]entry, len(objs))
	for i, o := range objs {
		sens := o.Params.Error(ReferenceRatio, o.Distance) - o.Params.Error(1, o.Distance)
		if sens < 1e-3 {
			sens = 1e-3
		}
		entries[i] = entry{
			obj:    o,
			weight: sens * float64(o.Spec.MaxTriangles),
			min:    minObjectRatio * float64(o.Spec.MaxTriangles),
			max:    float64(o.Spec.MaxTriangles),
		}
	}
	// Sort by sensitivity weight (most sensitive first) — the paper's
	// O(L log L) sorting step; processing order also makes cap handling
	// deterministic.
	sort.SliceStable(entries, func(a, b int) bool { return entries[a].weight > entries[b].weight })

	// Water-fill: proportional shares with per-object caps, iterating while
	// caps bind. Guarantee the floor first.
	grant := make([]float64, len(entries))
	for i := range entries {
		grant[i] = entries[i].min
		budget -= entries[i].min
	}
	if budget < 0 {
		budget = 0
	}
	active := make([]int, 0, len(entries))
	for i := range entries {
		active = append(active, i)
	}
	for budget > 1e-9 && len(active) > 0 {
		wsum := 0.0
		for _, i := range active {
			wsum += entries[i].weight
		}
		if wsum <= 0 {
			break
		}
		next := active[:0]
		spent := 0.0
		for _, i := range active {
			share := budget * entries[i].weight / wsum
			room := entries[i].max - grant[i]
			if share >= room {
				spent += room
				grant[i] = entries[i].max
			} else {
				spent += share
				grant[i] += share
				next = append(next, i)
			}
		}
		budget -= spent
		if len(next) == len(active) {
			break // nothing capped; shares are final
		}
		active = next
	}
	for i, e := range entries {
		t := int(math.Round(grant[i]))
		if t > e.obj.Spec.MaxTriangles {
			t = e.obj.Spec.MaxTriangles
		}
		if t < 1 {
			t = 1
		}
		e.obj.Triangles = t
	}
	return nil
}
