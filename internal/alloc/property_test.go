package alloc

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/soc"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// quickCfg runs every property for at least the thousand cases the test
// battery promises.
var quickCfg = &quick.Config{MaxCount: 1200}

// TestCountsWithinOneOfIdealShare checks the largest-remainder rounding
// invariants on random simplex points: counts are non-negative integers
// summing to m, and each resource's count is within one task of its ideal
// fractional share c_i·m.
func TestCountsWithinOneOfIdealShare(t *testing.T) {
	f := func(seed uint64, mRaw uint8) bool {
		m := int(mRaw % 41) // 0..40 tasks, including the empty taskset
		rng := sim.NewRNG(seed)
		c := make([]float64, tasks.NumResources)
		rng.Dirichlet(1, c)
		counts, err := Counts(c, m)
		if err != nil {
			return false
		}
		sum := 0
		for i, v := range counts {
			if v < 0 {
				return false
			}
			sum += v
			if math.Abs(float64(v)-c[i]*float64(m)) > 1+1e-9 {
				return false
			}
		}
		return sum == m
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// propModels is the model pool random tasksets draw from; it mixes
// everywhere-supported models with deeplabv3, which Pixel 7 cannot run on
// NNAPI, so the repair pass is exercised too.
var propModels = []string{tasks.MNIST, tasks.MobileNetV1, tasks.DeepLabV3, tasks.MobileNetDetV1, tasks.EfficientLiteV0}

// profileCache memoizes taskset profiles by model mask: profiling simulates
// every (task, resource) pair and would dominate the property run.
var profileCache = map[uint32]*soc.Profile{}

func randomTaskset(t *testing.T, seed uint64) (*soc.Profile, []string) {
	t.Helper()
	rng := sim.NewRNG(seed)
	var counts []tasks.ModelCount
	var mask uint32
	for i, m := range propModels {
		n := int(rng.Float64() * 3) // 0..2 instances
		if n > 0 {
			counts = append(counts, tasks.ModelCount{Model: m, Count: n})
			mask |= uint32(n) << (2 * i)
		}
	}
	if len(counts) == 0 {
		counts = append(counts, tasks.ModelCount{Model: tasks.MNIST, Count: 1})
		mask = 1
	}
	set, err := tasks.Expand("prop", counts)
	if err != nil {
		t.Fatal(err)
	}
	prof, ok := profileCache[mask]
	if !ok {
		prof, err = soc.ProfileTaskset(soc.Pixel7(), set, 1)
		if err != nil {
			t.Fatal(err)
		}
		profileCache[mask] = prof
	}
	ids := make([]string, len(set.Tasks))
	for i, task := range set.Tasks {
		ids[i] = task.ID()
	}
	return prof, ids
}

// TestAssignRandomTasksetsCoverEveryTaskOnce drives Assign with random
// tasksets and random simplex points: the returned allocation must place
// every task exactly once, on a resource the task is actually profiled for.
func TestAssignRandomTasksetsCoverEveryTaskOnce(t *testing.T) {
	f := func(seed uint64) bool {
		prof, ids := randomTaskset(t, seed)
		rng := sim.NewRNG(seed ^ 0x9e3779b97f4a7c15)
		c := make([]float64, tasks.NumResources)
		rng.Dirichlet(1, c)
		counts, err := Counts(c, len(ids))
		if err != nil {
			return false
		}
		got, err := Assign(counts, prof, ids)
		if err != nil {
			return false
		}
		if len(got) != len(ids) {
			return false
		}
		for _, id := range ids {
			r, ok := got[id]
			if !ok {
				return false // a task was left unplaced
			}
			supported := false
			for _, e := range prof.Entries {
				if e.TaskID == id && e.Resource == r {
					supported = true
					break
				}
			}
			if !supported {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}
