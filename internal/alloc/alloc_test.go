package alloc

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/mar-hbo/hbo/internal/render"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/soc"
	"github.com/mar-hbo/hbo/internal/tasks"
)

func TestCountsPaperExample(t *testing.T) {
	// The paper's worked example: c = [0.4, 0.1, 0.5], M = 3 -> [1, 0, 2].
	got, err := Counts([]float64{0.4, 0.1, 0.5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Counts = %v, want %v", got, want)
		}
	}
}

func TestCountsAlwaysSumToM(t *testing.T) {
	f := func(seed uint64, mRaw uint8) bool {
		m := int(mRaw%12) + 1
		rng := sim.NewRNG(seed)
		c := make([]float64, 3)
		rng.Dirichlet(1, c)
		counts, err := Counts(c, m)
		if err != nil {
			return false
		}
		sum := 0
		for _, v := range counts {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestCountsRemainderGoesToHighestUsage(t *testing.T) {
	// c = [0.34, 0.33, 0.33], M = 1: floor gives [0,0,0]; the single task
	// must land on the highest-usage resource.
	got, err := Counts([]float64{0.34, 0.33, 0.33}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("Counts = %v, want [1 0 0]", got)
	}
}

func TestCountsRejectsBadInput(t *testing.T) {
	if _, err := Counts([]float64{0.5, 0.2}, 3); err == nil {
		t.Fatal("non-normalized proportions accepted")
	}
	if _, err := Counts([]float64{1.5, -0.5, 0}, 3); err == nil {
		t.Fatal("negative proportion accepted")
	}
	if _, err := Counts([]float64{1, 0, 0}, -1); err == nil {
		t.Fatal("negative M accepted")
	}
}

func cf1Profile(t *testing.T) (*soc.Profile, []string) {
	t.Helper()
	set := tasks.CF1()
	prof, err := soc.ProfileTaskset(soc.Pixel7(), set, 1)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(set.Tasks))
	for i, task := range set.Tasks {
		ids[i] = task.ID()
	}
	return prof, ids
}

func TestAssignPlacesEveryTaskOnce(t *testing.T) {
	prof, ids := cf1Profile(t)
	got, err := Assign([]int{3, 0, 3}, prof, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("assigned %d tasks, want %d", len(got), len(ids))
	}
	used := map[tasks.Resource]int{}
	for id, r := range got {
		used[r]++
		if _, err := soc.Pixel7().Model(taskModel(id)); err != nil {
			t.Fatalf("unknown task %s in assignment", id)
		}
	}
	if used[tasks.CPU] != 3 || used[tasks.NNAPI] != 3 {
		t.Fatalf("resource usage %v, want CPU:3 NNAPI:3", used)
	}
}

// taskModel strips an instance suffix from a task ID.
func taskModel(id string) string {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '_' {
			return id[:i]
		}
	}
	return id
}

func TestAssignPrefersLowLatencyPairs(t *testing.T) {
	prof, ids := cf1Profile(t)
	// All capacity on NNAPI except one CPU slot: the NNAPI-affine tasks
	// should take NNAPI; the CPU slot should not go to one of them.
	got, err := Assign([]int{1, 0, 5}, prof, ids)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"mobilenetDetv1", "mobilenetv1", "efficientclass-lite0"} {
		if got[id] != tasks.NNAPI {
			t.Errorf("task %s on %s, want NNAPI (its lowest-latency resource)", id, got[id])
		}
	}
}

func TestAssignAllOnOneResource(t *testing.T) {
	prof, ids := cf1Profile(t)
	got, err := Assign([]int{6, 0, 0}, prof, ids)
	if err != nil {
		t.Fatal(err)
	}
	for id, r := range got {
		if r != tasks.CPU {
			t.Errorf("task %s on %s, want CPU", id, r)
		}
	}
}

func TestAssignRepairsNAIncompatibility(t *testing.T) {
	// deeplabv3 on Pixel 7 supports only CPU and GPU. Force all capacity to
	// NNAPI: the paper's pseudo-code would strand it, the repair pass must
	// still place it.
	set, err := tasks.Expand("na-set", []tasks.ModelCount{{Model: tasks.DeepLabV3, Count: 1}, {Model: tasks.MobileNetV1, Count: 1}})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := soc.ProfileTaskset(soc.Pixel7(), set, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Assign([]int{0, 0, 2}, prof, []string{"deeplabv3", "mobilenetv1"})
	if err != nil {
		t.Fatal(err)
	}
	if got["mobilenetv1"] != tasks.NNAPI {
		t.Errorf("mobilenetv1 on %s, want NNAPI", got["mobilenetv1"])
	}
	if got["deeplabv3"] == tasks.NNAPI {
		t.Error("deeplabv3 assigned to unsupported NNAPI")
	}
}

func TestAssignValidatesInput(t *testing.T) {
	prof, ids := cf1Profile(t)
	if _, err := Assign([]int{1, 1}, prof, ids); err == nil {
		t.Fatal("short counts accepted")
	}
	if _, err := Assign([]int{1, 1, 1}, prof, ids); err == nil {
		t.Fatal("capacity != M accepted")
	}
	if _, err := Assign([]int{-1, 4, 3}, prof, ids); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := Assign([]int{3, 0, 3}, prof, []string{"a", "a", "b", "c", "d", "e"}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestAssignProperty(t *testing.T) {
	prof, ids := cf1Profile(t)
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		c := make([]float64, 3)
		rng.Dirichlet(1, c)
		counts, err := Counts(c, len(ids))
		if err != nil {
			return false
		}
		got, err := Assign(counts, prof, ids)
		if err != nil {
			return false
		}
		if len(got) != len(ids) {
			return false
		}
		// No task on an unsupported resource.
		dev := soc.Pixel7()
		for id, r := range got {
			mp, err := dev.Model(taskModel(id))
			if err != nil || !mp.Supported(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func sceneForTD(t *testing.T) *render.Scene {
	t.Helper()
	lib, err := render.LibraryFor(render.SC1(), 1)
	if err != nil {
		t.Fatal(err)
	}
	scene := render.NewScene(lib)
	if err := scene.PlaceAll(render.SC1(), 1.5); err != nil {
		t.Fatal(err)
	}
	return scene
}

func TestDistributeTrianglesConservesBudget(t *testing.T) {
	scene := sceneForTD(t)
	for _, x := range []float64{1, 0.72, 0.5, 0.3} {
		if err := DistributeTriangles(scene.Objects(), x); err != nil {
			t.Fatal(err)
		}
		got := scene.TotalRatio()
		if math.Abs(got-x) > 0.02 {
			t.Errorf("total ratio after TD(%v) = %v", x, got)
		}
		for _, o := range scene.Objects() {
			if o.Triangles < 1 || o.Triangles > o.Spec.MaxTriangles {
				t.Errorf("object %s got %d triangles (max %d)", o.ID(), o.Triangles, o.Spec.MaxTriangles)
			}
		}
	}
}

func TestDistributeTrianglesFavorsSensitiveObjects(t *testing.T) {
	scene := sceneForTD(t)
	// Make one object much closer: its degradation is more visible, so it
	// should retain a higher ratio than the same-spec far object.
	near, err := scene.Object("plane")
	if err != nil {
		t.Fatal(err)
	}
	far, err := scene.Object("plane_2")
	if err != nil {
		t.Fatal(err)
	}
	near.Distance = 0.8
	far.Distance = 6
	if err := DistributeTriangles(scene.Objects(), 0.5); err != nil {
		t.Fatal(err)
	}
	if near.Ratio() <= far.Ratio() {
		t.Errorf("near object ratio %v should exceed far object ratio %v", near.Ratio(), far.Ratio())
	}
}

func TestDistributeTrianglesFullBudgetRestoresMax(t *testing.T) {
	scene := sceneForTD(t)
	if err := DistributeTriangles(scene.Objects(), 0.3); err != nil {
		t.Fatal(err)
	}
	if err := DistributeTriangles(scene.Objects(), 1); err != nil {
		t.Fatal(err)
	}
	for _, o := range scene.Objects() {
		if o.Triangles != o.Spec.MaxTriangles {
			t.Errorf("object %s at %d/%d after full budget", o.ID(), o.Triangles, o.Spec.MaxTriangles)
		}
	}
}

func TestDistributeTrianglesProperty(t *testing.T) {
	scene := sceneForTD(t)
	f := func(xRaw uint16) bool {
		x := 0.1 + 0.9*float64(xRaw)/65535
		if err := DistributeTriangles(scene.Objects(), x); err != nil {
			return false
		}
		total := 0
		for _, o := range scene.Objects() {
			if o.Triangles < 1 || o.Triangles > o.Spec.MaxTriangles {
				return false
			}
			total += o.Triangles
		}
		return math.Abs(float64(total)/float64(scene.TotalMaxTriangles())-x) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributeTrianglesValidation(t *testing.T) {
	scene := sceneForTD(t)
	if err := DistributeTriangles(scene.Objects(), 1.5); err == nil {
		t.Fatal("ratio > 1 accepted")
	}
	if err := DistributeTriangles(scene.Objects(), math.NaN()); err == nil {
		t.Fatal("NaN ratio accepted")
	}
	if err := DistributeTriangles(nil, 0.5); err != nil {
		t.Fatal("empty scene should be a no-op")
	}
}
