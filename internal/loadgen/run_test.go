package loadgen_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"github.com/mar-hbo/hbo/internal/edge/sessiond"
	"github.com/mar-hbo/hbo/internal/faults"
	"github.com/mar-hbo/hbo/internal/loadgen"
)

// TestRunConcurrentWithFaults drives a multi-worker fleet through a seeded
// fault injector: the per-client retry stack must absorb the (deterministic)
// drops and 503s with zero failed sessions, and per-session results must be
// complete despite the concurrency. Run under -race this covers the shared
// observer registry and the server's shard workers.
func TestRunConcurrentWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet run")
	}
	svc, err := sessiond.New(sessiond.DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("service: %v", err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:    ts.URL,
		Sessions:   6,
		Seed:       11,
		Jobs:       3,
		DurationMS: 30_000,
		Faults: faults.Plan{
			DropRate:        0.05,
			ServerErrorRate: 0.05,
		},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Failures != 0 {
		for _, s := range rep.Sessions {
			if s.Err != "" {
				t.Errorf("session %s: %s", s.ID, s.Err)
			}
		}
		t.Fatalf("%d of %d sessions failed under injected faults", rep.Failures, len(rep.Sessions))
	}
	for _, s := range rep.Sessions {
		if len(s.Samples) == 0 {
			t.Errorf("session %s recorded no reward samples", s.ID)
		}
		if s.Activations == 0 {
			t.Errorf("session %s recorded no activations", s.ID)
		}
	}
	if rep.TotalRemote == 0 {
		t.Error("no remote proposals recorded — the fleet never exercised the session BO path")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  loadgen.Config
	}{
		{"empty base URL", loadgen.Config{Sessions: 1}},
		{"zero sessions", loadgen.Config{BaseURL: "http://x"}},
		{"negative duration", loadgen.Config{BaseURL: "http://x", Sessions: 1, DurationMS: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := loadgen.Run(context.Background(), tc.cfg); err == nil {
				t.Fatal("Run accepted an invalid config")
			}
		})
	}
}
