// Package loadgen drives a fleet of simulated MAR clients against a running
// hboedge server's multi-session endpoints (internal/edge/sessiond).
//
// Each client is one full paper-stack session: a seeded scenario build
// (device + object set + taskset), a fault-tolerant edge.Client (optionally
// behind a seeded faults.Transport), a server-side BO session driven through
// sessiond.Backend, and a core.Session running the event-based activation
// policy over virtual time. Mid-run the user "walks away" from the placed
// objects — a scripted distance change that drifts the reward and forces a
// re-activation, so every client exercises the suggest/observe path more
// than once.
//
// Determinism contract: per-client seeds are pre-drawn from the parent seed
// in index order, so client i's seed never depends on how many workers run.
// With Jobs=1 the whole run — including every per-session reward trajectory
// — is bit-identical across repetitions; with Jobs>1 per-session
// trajectories stay deterministic (sessions share no state) while only the
// wall-clock interleaving varies.
package loadgen

import (
	"context"
	"fmt"
	"sync"

	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/edge"
	"github.com/mar-hbo/hbo/internal/edge/sessiond"
	"github.com/mar-hbo/hbo/internal/faults"
	"github.com/mar-hbo/hbo/internal/obs"
	"github.com/mar-hbo/hbo/internal/render"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// Config shapes one load run.
type Config struct {
	// BaseURL is the hboedge server to drive.
	BaseURL string
	// Sessions is the number of simulated clients.
	Sessions int
	// Seed roots every per-client seed; see the package determinism
	// contract.
	Seed uint64
	// Scenario is the Table II combination each client builds ("SC2-CF2"
	// when empty).
	Scenario string
	// DurationMS is each client's virtual session length (60 000 when
	// zero).
	DurationMS float64
	// Jobs is the number of clients running concurrently (1 when <= 0; use
	// 1 for bit-identical full-run output).
	Jobs int
	// InitSamples and Iterations override the paper's per-activation BO
	// budget (5 and 15) when positive; load runs default to a smaller 3+6
	// budget so a 256-session sweep stays fast.
	InitSamples int
	Iterations  int
	// MoveAtMS schedules the scripted user movement (half the duration when
	// zero; negative disables). MoveDistance is the new user-object
	// distance in meters (4.0 when zero).
	MoveAtMS     float64
	MoveDistance float64
	// Mobility, when set, replaces the single scripted move with a
	// continuous per-client walk: each client's user-object distance
	// follows its own seeded waypoint trajectory (see Mobility/LinkAt).
	// Nil keeps the legacy MoveAtMS behavior and every existing golden
	// trajectory byte-identical.
	Mobility *MobilityConfig
	// UseLOD routes quality manipulation through the server's per-session
	// mesh cache, with a local decimator as degradation fallback.
	UseLOD bool
	// UseStream carries each session's open/suggest/observe/close traffic
	// over the binary /session/stream transport instead of JSON POSTs,
	// falling back to JSON automatically against servers without the route.
	// Each client gets its own stream connection (it already has its own
	// edge client and fault-injection transport), so per-session trajectories
	// stay bit-identical to the JSON path.
	UseStream bool
	// CacheCap is each client's local mesh-cache capacity (16 when zero).
	CacheCap int
	// Policy selects the server-side optimizer policy for every session
	// (see internal/bo/policies); empty keeps the GP-EI default.
	Policy string
	// Faults, when non-zero, wraps every client's transport in a seeded
	// fault injector.
	Faults faults.Plan
	// Client overrides the edge client tuning (timeouts, retries, breaker).
	// The jitter seed is always re-derived per client.
	Client *edge.ClientConfig
	// Observer receives client-side metrics (suggest round-trip latency,
	// retries, breaker transitions) from every client. Optional; instruments
	// are concurrency-safe.
	Observer *obs.Registry
}

func (cfg Config) withDefaults() Config {
	if cfg.Scenario == "" {
		cfg.Scenario = "SC2-CF2"
	}
	if cfg.DurationMS == 0 {
		cfg.DurationMS = 60_000
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 1
	}
	if cfg.InitSamples <= 0 {
		cfg.InitSamples = 3
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 6
	}
	if cfg.MoveAtMS == 0 {
		cfg.MoveAtMS = cfg.DurationMS / 2
	}
	if cfg.MoveDistance == 0 {
		cfg.MoveDistance = 4.0
	}
	if cfg.CacheCap == 0 {
		cfg.CacheCap = 16
	}
	return cfg
}

func (cfg Config) validate() error {
	if cfg.BaseURL == "" {
		return fmt.Errorf("loadgen: empty base URL")
	}
	if cfg.Sessions < 1 {
		return fmt.Errorf("loadgen: need at least one session, got %d", cfg.Sessions)
	}
	if cfg.DurationMS < 0 {
		return fmt.Errorf("loadgen: negative duration %v", cfg.DurationMS)
	}
	return nil
}

func faultsActive(p faults.Plan) bool {
	return p.DropRate > 0 || p.ServerErrorRate > 0 || p.TruncateRate > 0 ||
		p.CorruptRate > 0 || p.LatencyMeanMS > 0 || len(p.Flaps) > 0
}

// SessionResult is one client's outcome.
type SessionResult struct {
	// ID is the session identifier ("c0042").
	ID string `json:"id"`
	// Seed is the client's derived root seed.
	Seed uint64 `json:"seed"`
	// Err is the terminal failure, if any ("" on success). A failed client
	// keeps whatever trajectory it recorded before failing.
	Err string `json:"err,omitempty"`
	// Samples is the session's full reward trajectory (the per-session B_t
	// series).
	Samples []core.RewardSample `json:"samples"`
	// Activations counts HBO activations; DegradedWindows counts reward
	// windows measured on local fallback.
	Activations     int `json:"activations"`
	DegradedWindows int `json:"degraded_windows"`
	// Remote and Fallback count BO iterations proposed by the server versus
	// recovered locally after a remote failure.
	Remote   int `json:"remote_proposals"`
	Fallback int `json:"fallback_proposals"`
	// Reopens counts transparent re-admissions after server-side evictions;
	// Restores counts the opens the server satisfied from a durable snapshot
	// (always zero against a server without a session store).
	Reopens  int `json:"reopens"`
	Restores int `json:"restores"`
	// MeanReward and FinalReward summarize the trajectory.
	MeanReward  float64 `json:"mean_reward"`
	FinalReward float64 `json:"final_reward"`
}

// Report is one load run's aggregate outcome. Sessions is sorted by ID, so
// two runs with the same config and seed compare byte-for-byte.
type Report struct {
	Scenario         string          `json:"scenario"`
	Seed             uint64          `json:"seed"`
	Sessions         []SessionResult `json:"sessions"`
	Failures         int             `json:"failures"`
	TotalActivations int             `json:"total_activations"`
	TotalReopens     int             `json:"total_reopens"`
	TotalRestores    int             `json:"total_restores"`
	TotalDegraded    int             `json:"total_degraded_windows"`
	TotalRemote      int             `json:"total_remote_proposals"`
	TotalFallback    int             `json:"total_fallback_proposals"`
}

// Run executes the configured load against the server. The context bounds
// the whole run; cancellation marks unfinished clients failed rather than
// abandoning their partial results.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Pre-draw every client seed in index order: client i's stream is fixed
	// by (Seed, i) alone, never by worker scheduling.
	seeds := make([]uint64, cfg.Sessions)
	parent := sim.NewRNG(cfg.Seed)
	for i := range seeds {
		seeds[i] = parent.Uint64()
	}
	results := make([]SessionResult, cfg.Sessions)
	if cfg.Jobs == 1 {
		for i := range results {
			results[i] = runOne(ctx, cfg, i, seeds[i])
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < cfg.Jobs; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i] = runOne(ctx, cfg, i, seeds[i])
				}
			}()
		}
		for i := range results {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	rep := &Report{Scenario: cfg.Scenario, Seed: cfg.Seed, Sessions: results}
	for i := range results {
		r := &results[i]
		if r.Err != "" {
			rep.Failures++
		}
		rep.TotalActivations += r.Activations
		rep.TotalReopens += r.Reopens
		rep.TotalRestores += r.Restores
		rep.TotalDegraded += r.DegradedWindows
		rep.TotalRemote += r.Remote
		rep.TotalFallback += r.Fallback
	}
	return rep, nil
}

// runOne executes a single client session end to end. Every error is folded
// into the result — one failed client must not sink the fleet.
func runOne(ctx context.Context, cfg Config, idx int, seed uint64) SessionResult {
	res := SessionResult{ID: fmt.Sprintf("c%04d", idx), Seed: seed}
	// Derive independent streams for each stochastic component so none of
	// them aliases another.
	crng := sim.NewRNG(seed)
	buildSeed := crng.Uint64()
	boSeed := crng.Uint64()
	sessSeed := crng.Uint64()
	faultSeed := crng.Uint64()
	jitterSeed := crng.Uint64()
	// Drawn after every pre-existing stream so enabling (or ignoring)
	// mobility never shifts the seeds above.
	mobSeed := crng.Uint64()

	spec, err := scenario.ByName(cfg.Scenario)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	built, err := spec.Build(buildSeed)
	if err != nil {
		res.Err = err.Error()
		return res
	}

	ccfg := edge.DefaultClientConfig()
	if cfg.Client != nil {
		ccfg = *cfg.Client
	}
	ccfg.JitterSeed = jitterSeed
	if faultsActive(cfg.Faults) {
		ccfg.Transport = faults.NewTransport(ccfg.Transport, faultSeed, cfg.Faults)
	}
	ec, err := edge.NewClientWithConfig(cfg.BaseURL, cfg.CacheCap, ccfg)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if cfg.Observer != nil {
		ec.SetObserver(cfg.Observer)
	}

	hcfg := core.DefaultConfig()
	hcfg.InitSamples = cfg.InitSamples
	hcfg.Iterations = cfg.Iterations
	sc, err := sessiond.NewClient(ec, res.ID, tasks.NumResources, hcfg.RMin, boSeed, hcfg.InitSamples)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if cfg.Policy != "" {
		if err := sc.SetPolicy(cfg.Policy); err != nil {
			res.Err = err.Error()
			return res
		}
	}
	if cfg.Observer != nil {
		sc.SetObserver(cfg.Observer)
	}
	if cfg.UseStream {
		stream, err := sessiond.NewStreamClient(ec)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		sc.SetStream(stream)
		defer func() { _ = stream.Close() }()
	}
	built.Runtime.SetBOBackend(sessiond.NewBackend(ctx, sc), boSeed)
	if cfg.UseLOD {
		built.Runtime.SetLODProvider(sessiond.NewLOD(ctx, sc))
		built.Runtime.SetLocalFallback(render.NewLocalDecimator(built.Library))
	}

	session, err := core.NewSession(built.Runtime,
		core.SessionConfig{HBO: hcfg, Mode: core.EventBased}, sim.NewRNG(sessSeed))
	if err != nil {
		res.Err = err.Error()
		return res
	}

	var mob *Mobility
	if cfg.Mobility != nil {
		mob = NewMobility(mobSeed, *cfg.Mobility, cfg.DurationMS)
	}
	moved := false
	for built.System.Now() < cfg.DurationMS {
		if err := ctx.Err(); err != nil {
			res.Err = err.Error()
			break
		}
		if mob != nil {
			d := mob.DistanceAt(built.System.Now())
			for _, o := range built.Scene.Objects() {
				o.Distance = d
			}
			built.Runtime.SyncRenderLoad()
		} else if !moved && cfg.MoveAtMS > 0 && built.System.Now() >= cfg.MoveAtMS {
			for _, o := range built.Scene.Objects() {
				o.Distance = cfg.MoveDistance
			}
			built.Runtime.SyncRenderLoad()
			moved = true
		}
		if err := session.Step(); err != nil {
			res.Err = err.Error()
			break
		}
	}
	// Best-effort server-side teardown; the server would otherwise LRU the
	// session out eventually.
	_ = sc.CloseSession(ctx)

	res.Samples = session.Samples()
	res.Activations = len(session.Activations())
	res.DegradedWindows = session.DegradedWindows()
	res.Remote, res.Fallback = session.ProposalStats()
	res.Reopens = sc.Reopens()
	res.Restores = sc.Restores()
	if n := len(res.Samples); n > 0 {
		sum := 0.0
		for _, s := range res.Samples {
			sum += s.Reward
		}
		res.MeanReward = sum / float64(n)
		res.FinalReward = res.Samples[n-1].Reward
	}
	return res
}
