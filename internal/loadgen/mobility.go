package loadgen

import (
	"math"

	"github.com/mar-hbo/hbo/internal/sim"
)

// MobilityConfig shapes a seeded user walk: a piecewise-linear distance
// trajectory between random waypoints, generalizing the single scripted
// MoveAtMS/MoveDistance step every load client performed before.
type MobilityConfig struct {
	// MinDistance and MaxDistance bound the walk in meters (0.5 and 6.0
	// when zero).
	MinDistance float64
	MaxDistance float64
	// SegmentMS is the mean dwell between waypoints in virtual
	// milliseconds (5000 when zero); actual segment lengths vary
	// uniformly in [0.5, 1.5] × SegmentMS.
	SegmentMS float64
}

func (c MobilityConfig) withDefaults() MobilityConfig {
	if c.MinDistance == 0 {
		c.MinDistance = 0.5
	}
	if c.MaxDistance == 0 {
		c.MaxDistance = 6.0
	}
	if c.SegmentMS == 0 {
		c.SegmentMS = 5000
	}
	return c
}

// Mobility is one user's realized walk: waypoint times and distances,
// fixed at construction. DistanceAt interpolates linearly, so the
// trajectory is continuous — a user never teleports.
type Mobility struct {
	times []float64
	dists []float64
}

// NewMobility draws a walk covering [0, durationMS] from the seed. Equal
// (seed, cfg, durationMS) always yields the identical trajectory.
func NewMobility(seed uint64, cfg MobilityConfig, durationMS float64) *Mobility {
	cfg = cfg.withDefaults()
	rng := sim.NewRNG(seed)
	span := cfg.MaxDistance - cfg.MinDistance
	m := &Mobility{
		times: []float64{0},
		dists: []float64{cfg.MinDistance + span*rng.Float64()},
	}
	t := 0.0
	for t < durationMS {
		t += cfg.SegmentMS * (0.5 + rng.Float64())
		m.times = append(m.times, t)
		m.dists = append(m.dists, cfg.MinDistance+span*rng.Float64())
	}
	return m
}

// DistanceAt returns the user-object distance at virtual time t,
// interpolating between waypoints and clamping outside the walk.
func (m *Mobility) DistanceAt(t float64) float64 {
	if t <= m.times[0] {
		return m.dists[0]
	}
	last := len(m.times) - 1
	if t >= m.times[last] {
		return m.dists[last]
	}
	// Segments are short (a few seconds of virtual time) and walks are
	// queried in increasing t; a linear scan stays cheap and allocation
	// free.
	for i := 1; i <= last; i++ {
		if t <= m.times[i] {
			frac := (t - m.times[i-1]) / (m.times[i] - m.times[i-1])
			return m.dists[i-1] + frac*(m.dists[i]-m.dists[i-1])
		}
	}
	return m.dists[last]
}

// Link is one user's wireless link quality at a point in time.
type Link struct {
	// BandwidthMbps is the usable uplink/downlink throughput.
	BandwidthMbps float64
	// RTTMS is the round-trip time to the edge in milliseconds.
	RTTMS float64
}

// Link-model constants: a log-distance path-loss shape calibrated to
// indoor Wi-Fi/5G-mmWave numbers from the multi-user MAR literature —
// ~90 Mbps and ~4 ms RTT within a meter of the AP, falling toward
// ~15 Mbps and ~10 ms at six meters through furniture and bodies.
const (
	linkBaseMbps   = 90.0
	linkRefMeters  = 1.5
	linkLossExp    = 1.6
	linkFloorMbps  = 4.0
	linkBaseRTTMS  = 4.0
	linkRTTPerM    = 1.0
	linkMaxRTTDist = 12.0
)

// LinkAt maps a user-edge distance (meters) to link quality. Deterministic
// and monotone: bandwidth never rises, RTT never falls, as distance grows.
func LinkAt(distance float64) Link {
	if distance < 0 || math.IsNaN(distance) {
		distance = 0
	}
	bw := linkBaseMbps / (1 + math.Pow(distance/linkRefMeters, linkLossExp))
	if bw < linkFloorMbps {
		bw = linkFloorMbps
	}
	d := distance
	if d > linkMaxRTTDist {
		d = linkMaxRTTDist
	}
	return Link{BandwidthMbps: bw, RTTMS: linkBaseRTTMS + linkRTTPerM*d}
}

// TransferMS returns the time to move payloadKB kilobytes across the link,
// round trip included.
func (l Link) TransferMS(payloadKB float64) float64 {
	if payloadKB < 0 {
		payloadKB = 0
	}
	// Mbps → KB/ms: 1 Mbps = 0.125 KB/ms.
	return l.RTTMS + payloadKB/(l.BandwidthMbps*0.125)
}
