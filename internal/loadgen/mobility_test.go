package loadgen

import (
	"math"
	"testing"
	"testing/quick"
)

// mobCfg derives a varied but valid mobility config from quick's raw bytes.
func mobCfg(minRaw, spanRaw, segRaw uint8) MobilityConfig {
	return MobilityConfig{
		MinDistance: 0.2 + float64(minRaw%30)/10,
		MaxDistance: 0.2 + float64(minRaw%30)/10 + 0.5 + float64(spanRaw%50)/10,
		SegmentMS:   500 + float64(segRaw%40)*250,
	}
}

// TestMobilityDeterministic: equal (seed, cfg, duration) yields bit-identical
// trajectories at every sampled instant.
func TestMobilityDeterministic(t *testing.T) {
	f := func(seed uint64, minRaw, spanRaw, segRaw uint8) bool {
		cfg := mobCfg(minRaw, spanRaw, segRaw)
		const dur = 30_000.0
		a := NewMobility(seed, cfg, dur)
		b := NewMobility(seed, cfg, dur)
		for i := 0; i <= 300; i++ {
			ti := dur * float64(i) / 300
			if math.Float64bits(a.DistanceAt(ti)) != math.Float64bits(b.DistanceAt(ti)) {
				t.Logf("trajectories diverge at t=%v", ti)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMobilityBounded: every sampled distance lies inside the configured
// band, including queries before 0 and past the walk's end.
func TestMobilityBounded(t *testing.T) {
	f := func(seed uint64, minRaw, spanRaw, segRaw uint8) bool {
		cfg := mobCfg(minRaw, spanRaw, segRaw)
		const dur = 30_000.0
		m := NewMobility(seed, cfg, dur)
		for i := -5; i <= 305; i++ {
			d := m.DistanceAt(dur * float64(i) / 300)
			if d < cfg.MinDistance || d > cfg.MaxDistance || math.IsNaN(d) {
				t.Logf("distance %v outside [%v,%v]", d, cfg.MinDistance, cfg.MaxDistance)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMobilityContinuous: the walk never teleports — between two instants the
// distance changes by at most the steepest possible segment slope times the
// elapsed time (span over the minimum segment length, plus fp slack).
func TestMobilityContinuous(t *testing.T) {
	f := func(seed uint64, minRaw, spanRaw, segRaw uint8) bool {
		cfg := mobCfg(minRaw, spanRaw, segRaw)
		const dur = 30_000.0
		m := NewMobility(seed, cfg, dur)
		maxSlope := (cfg.MaxDistance - cfg.MinDistance) / (0.5 * cfg.SegmentMS)
		step := dur / 600
		prev := m.DistanceAt(0)
		for i := 1; i <= 600; i++ {
			cur := m.DistanceAt(step * float64(i))
			if math.Abs(cur-prev) > maxSlope*step*(1+1e-9) {
				t.Logf("jump of %v over %v ms exceeds max slope %v", cur-prev, step, maxSlope)
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestLinkAtMonotone: farther users never see a faster link — bandwidth is
// non-increasing and RTT non-decreasing in distance.
func TestLinkAtMonotone(t *testing.T) {
	prev := LinkAt(0)
	if prev.BandwidthMbps <= 0 || prev.RTTMS <= 0 {
		t.Fatalf("LinkAt(0) = %+v, want positive fields", prev)
	}
	for d := 0.1; d <= 20; d += 0.1 {
		l := LinkAt(d)
		if l.BandwidthMbps > prev.BandwidthMbps {
			t.Fatalf("bandwidth rose from %v to %v at d=%v", prev.BandwidthMbps, l.BandwidthMbps, d)
		}
		if l.RTTMS < prev.RTTMS {
			t.Fatalf("RTT fell from %v to %v at d=%v", prev.RTTMS, l.RTTMS, d)
		}
		prev = l
	}
	if far := LinkAt(100); far.BandwidthMbps < linkFloorMbps {
		t.Fatalf("bandwidth %v fell below floor %v", far.BandwidthMbps, linkFloorMbps)
	}
}

// TestLinkAtClampsBadInput: negative and NaN distances behave like zero.
func TestLinkAtClampsBadInput(t *testing.T) {
	want := LinkAt(0)
	for _, d := range []float64{-1, -1e9, math.NaN()} {
		got := LinkAt(d)
		if got != want {
			t.Fatalf("LinkAt(%v) = %+v, want %+v", d, got, want)
		}
	}
}

// TestTransferMS: transfer time includes the RTT, grows with payload, and
// shrinks with bandwidth.
func TestTransferMS(t *testing.T) {
	near, far := LinkAt(1), LinkAt(6)
	if got := near.TransferMS(0); got != near.RTTMS {
		t.Fatalf("zero payload transfer = %v, want RTT %v", got, near.RTTMS)
	}
	if near.TransferMS(100) <= near.TransferMS(10) {
		t.Fatal("transfer time not increasing in payload")
	}
	if far.TransferMS(100) <= near.TransferMS(100) {
		t.Fatal("farther (slower) link not slower for equal payload")
	}
	if got := near.TransferMS(-5); got != near.RTTMS {
		t.Fatalf("negative payload transfer = %v, want RTT %v", got, near.RTTMS)
	}
}
