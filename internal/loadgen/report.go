package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/mar-hbo/hbo/internal/obs"
)

// trajectoryFormat tags the golden-file layout so a future format change
// fails the regression test loudly instead of diffing confusingly.
const trajectoryFormat = "loadgen-trajectories-v2"

// WriteTrajectories emits every per-session reward trajectory in a
// byte-exact text format: sessions sorted by ID (the Report order), one
// header line per session, then one line per sample carrying the IEEE-754
// bits of time and reward in hex plus the in-activation/degraded flags.
// Hex bits — not decimal formatting — make the golden regression test
// sensitive to any drift in the float pipeline, down to the last ulp.
func (r *Report) WriteTrajectories(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s scenario=%s seed=%016x sessions=%d\n",
		trajectoryFormat, r.Scenario, r.Seed, len(r.Sessions))
	for i := range r.Sessions {
		s := &r.Sessions[i]
		fmt.Fprintf(bw, "session %s seed=%016x samples=%d activations=%d reopens=%d restores=%d err=%q\n",
			s.ID, s.Seed, len(s.Samples), s.Activations, s.Reopens, s.Restores, s.Err)
		for _, smp := range s.Samples {
			fmt.Fprintf(bw, "%016x %016x %d %d\n",
				math.Float64bits(smp.TimeMS), math.Float64bits(smp.Reward),
				boolBit(smp.InActivation), boolBit(smp.Degraded))
		}
	}
	return bw.Flush()
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Summary renders the human-readable run digest the hboload CLI prints,
// optionally folding in client-side latency quantiles from the observer
// registry's suggest histogram.
func (r *Report) Summary(reg *obs.Registry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d sessions, scenario %s, seed %d\n", len(r.Sessions), r.Scenario, r.Seed)
	fmt.Fprintf(&b, "  failures:            %d\n", r.Failures)
	fmt.Fprintf(&b, "  activations:         %d\n", r.TotalActivations)
	fmt.Fprintf(&b, "  remote proposals:    %d\n", r.TotalRemote)
	fmt.Fprintf(&b, "  fallback proposals:  %d\n", r.TotalFallback)
	fmt.Fprintf(&b, "  degraded windows:    %d\n", r.TotalDegraded)
	fmt.Fprintf(&b, "  session reopens:     %d\n", r.TotalReopens)
	fmt.Fprintf(&b, "  snapshot restores:   %d\n", r.TotalRestores)
	mean, worst := r.rewardSpread()
	fmt.Fprintf(&b, "  mean reward B_t:     %.4f (worst session %.4f)\n", mean, worst)
	if reg != nil {
		snap := reg.Snapshot()
		if h, ok := snap.Histograms["load.suggest_wall_ms"]; ok && h.Count > 0 {
			fmt.Fprintf(&b, "  suggest latency ms:  p50<=%g p95<=%g p99<=%g (n=%d, mean %.2f)\n",
				h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Count, h.Mean())
		}
	}
	return b.String()
}

// rewardSpread returns the fleet-wide mean of per-session mean rewards and
// the worst session's mean (0, 0 with no successful sessions).
func (r *Report) rewardSpread() (mean, worst float64) {
	n := 0
	worst = math.Inf(1)
	for i := range r.Sessions {
		s := &r.Sessions[i]
		if len(s.Samples) == 0 {
			continue
		}
		mean += s.MeanReward
		if s.MeanReward < worst {
			worst = s.MeanReward
		}
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return mean / float64(n), worst
}
