package loadgen_test

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/mar-hbo/hbo/internal/edge/sessiond"
	"github.com/mar-hbo/hbo/internal/loadgen"
)

var update = flag.Bool("update", false, "rewrite golden files from the current output")

// runFixed executes the fixed golden configuration against a fresh session
// service and returns the byte-exact trajectory dump.
func runFixed(t *testing.T, useStream bool) []byte {
	t.Helper()
	svc, err := sessiond.New(sessiond.DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("service: %v", err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:    ts.URL,
		Sessions:   4,
		Seed:       7,
		Jobs:       1,
		DurationMS: 30_000,
		UseStream:  useStream,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Failures != 0 {
		for _, s := range rep.Sessions {
			if s.Err != "" {
				t.Errorf("session %s failed: %s", s.ID, s.Err)
			}
		}
		t.Fatalf("%d sessions failed", rep.Failures)
	}
	var buf bytes.Buffer
	if err := rep.WriteTrajectories(&buf); err != nil {
		t.Fatalf("write trajectories: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenTrajectories is the regression fence around the whole remote
// session pipeline: a fixed-seed single-worker load run must reproduce the
// checked-in per-session reward trajectories byte for byte — hex float bits
// included — and must do so twice within one process (no hidden global
// state). Regenerate deliberately with:
//
//	go test ./internal/loadgen -run TestGoldenTrajectories -update
func TestGoldenTrajectories(t *testing.T) {
	first := runFixed(t, false)
	second := runFixed(t, false)
	if !bytes.Equal(first, second) {
		t.Fatalf("two identical runs diverged:\n%s", firstDiff(first, second))
	}

	golden := filepath.Join("testdata", "trajectories.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, first, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(first))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(first, want) {
		t.Fatalf("trajectories drifted from golden file %s:\n%s\n"+
			"If the change is intentional, regenerate with -update.",
			golden, firstDiff(want, first))
	}
}

// TestGoldenTrajectoriesStream reruns the exact golden configuration over
// the binary stream transport and holds it to the same checked-in bytes: the
// wire protocol must be invisible to every trajectory, hex float bits
// included. There is deliberately no separate stream golden file — JSON and
// stream runs share one truth.
func TestGoldenTrajectoriesStream(t *testing.T) {
	got := runFixed(t, true)
	golden := filepath.Join("testdata", "trajectories.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update on TestGoldenTrajectories): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("stream-transport trajectories diverged from golden file %s:\n%s",
			golden, firstDiff(want, got))
	}
}

// firstDiff locates the first differing line of two dumps.
func firstDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(wl), len(gl))
}
