package hbo_test

// Chaos test: a full HBO session driven through an edge link with injected
// drops, latency spikes, and 5xx bursts. The fault-tolerance layer must keep
// every control period completing — degraded to the on-device decimator and
// local BO while the link is down — and transparently re-adopt the edge once
// the fault schedule clears (circuit breaker back to closed).

import (
	"net/http/httptest"
	"testing"
	"time"

	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/edge"
	"github.com/mar-hbo/hbo/internal/faults"
	"github.com/mar-hbo/hbo/internal/render"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
)

// chaosPlan fails every request (each non-dropped one gets a 503) and adds
// heavy-tailed latency — drops, spikes, and a 5xx burst at once.
func chaosPlan() faults.Plan {
	return faults.Plan{
		DropRate:        0.35,
		ServerErrorRate: 1,
		LatencyMeanMS:   2,
		LatencySigma:    0.8,
	}
}

func chaosSessionConfig() core.SessionConfig {
	hbo := core.DefaultConfig()
	hbo.InitSamples = 2
	hbo.Iterations = 2
	hbo.PeriodMS = 400
	hbo.SettleMS = 100
	hbo.MonitorIntervalMS = 500
	return core.SessionConfig{
		HBO: hbo,
		// Periodic activations guarantee edge traffic in every phase.
		Mode:               core.Periodic,
		PeriodicIntervalMS: 1500,
	}
}

func TestChaosSessionSurvivesUnreliableEdge(t *testing.T) {
	spec := scenario.SC1CF1()
	built, err := spec.Build(7)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]render.ObjectSpec, 0, len(spec.Objects))
	for _, c := range spec.Objects {
		specs = append(specs, c.Spec)
	}
	srv, err := edge.NewServer(specs)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	inj := faults.NewTransport(nil, 3, faults.Plan{})
	cfg := edge.DefaultClientConfig()
	cfg.Transport = inj
	cfg.MaxRetries = 1
	cfg.BackoffBase = time.Millisecond
	cfg.BackoffMax = 2 * time.Millisecond
	cfg.BreakerFailureThreshold = 3
	cfg.BreakerSuccessThreshold = 1
	cfg.BreakerOpenFor = 30 * time.Millisecond
	client, err := edge.NewClientWithConfig(ts.URL, 32, cfg)
	if err != nil {
		t.Fatal(err)
	}

	rt := built.Runtime
	rt.SetLODProvider(client)
	rt.SetLocalFallback(render.NewLocalDecimator(built.Library))
	rt.SetBOBackend(client, 42)
	sess, err := core.NewSession(rt, chaosSessionConfig(), sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}

	// Phase A — clean link: activations flow through the edge.
	if err := sess.RunFor(4000); err != nil {
		t.Fatalf("clean phase: %v", err)
	}
	if sess.DegradedWindows() != 0 {
		t.Fatalf("clean phase recorded %d degraded windows", sess.DegradedWindows())
	}
	if inj.Stats().Passed == 0 {
		t.Fatal("clean phase made no edge requests — the chaos phase would test nothing")
	}

	// Phase B — chaos: every request drops or 5xxes, with latency spikes.
	// The session must complete every control period without error, on the
	// local fallback.
	inj.SetPlan(chaosPlan())
	if err := sess.RunFor(8000); err != nil {
		t.Fatalf("chaos phase errored — no graceful degradation: %v", err)
	}
	if sess.DegradedWindows() == 0 {
		t.Fatal("chaos phase recorded no degraded windows")
	}
	st := client.BreakerStats()
	if st.Opens == 0 {
		t.Fatalf("breaker never opened under total link failure: %+v", st)
	}
	if !rt.Degraded() {
		t.Fatal("runtime not in degraded mode at the end of the chaos phase")
	}
	degradedAtRecovery := sess.DegradedWindows()

	// Phase C — fault schedule clears: after the breaker's open window the
	// next activation probes the edge, succeeds, and re-adopts it.
	inj.SetPlan(faults.Plan{})
	time.Sleep(cfg.BreakerOpenFor + 20*time.Millisecond)
	passedBefore := inj.Stats().Passed
	if err := sess.RunFor(6000); err != nil {
		t.Fatalf("recovery phase: %v", err)
	}
	if st := client.BreakerStats(); st.State != edge.BreakerClosed {
		t.Fatalf("breaker did not re-close after recovery: %+v", st)
	}
	if rt.Degraded() {
		t.Fatal("runtime still degraded after edge recovery")
	}
	if inj.Stats().Passed == passedBefore {
		t.Fatal("no edge requests succeeded after recovery — edge not re-adopted")
	}
	// Later recovery windows must not keep counting as degraded.
	tail := sess.Samples()[len(sess.Samples())-1]
	if tail.Degraded {
		t.Fatal("final window still flagged degraded")
	}
	if got := sess.DegradedWindows(); got > degradedAtRecovery+4 {
		t.Fatalf("degraded windows kept growing after recovery: %d -> %d", degradedAtRecovery, got)
	}
}
