// Package hbo is the public API of the HBO reproduction: a framework that
// jointly decides where each AI inference task of a mobile augmented-reality
// (MAR) app runs (CPU, GPU delegate, or NNAPI delegate) and how many
// triangles each virtual object is rendered with, trading AI latency against
// virtual-object quality with Bayesian optimization and allocation
// heuristics.
//
// The package reproduces "Joint AI Task Allocation and Virtual Object
// Quality Manipulation for Improved MAR App Performance" (ICDCS 2024) on a
// simulated smartphone SoC — see DESIGN.md for the substitution argument and
// EXPERIMENTS.md for paper-vs-measured results.
//
// Typical use:
//
//	app, err := hbo.New(hbo.Options{Scenario: "SC1-CF1"})
//	...
//	sol, err := app.Optimize()
//	fmt.Println(sol.TriangleRatio, sol.Allocation)
package hbo

import (
	"fmt"
	"sort"

	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/experiments"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
)

// Options configures an App.
type Options struct {
	// Scenario is one of the paper's evaluation setups: "SC1-CF1",
	// "SC2-CF1", "SC1-CF2", "SC2-CF2". Required.
	Scenario string
	// Seed drives every random choice (object-library training, SoC noise,
	// Bayesian initialization). Defaults to 42.
	Seed uint64
	// Weight is w in the reward B = Q − w·ε. Defaults to the paper's 2.5.
	Weight float64
	// RMin is the minimum total triangle ratio. Defaults to 0.1.
	RMin float64
	// InitSamples and Iterations are the activation budget. Defaults: 5+15.
	InitSamples int
	Iterations  int
	// StartEmpty trains the object library but places nothing, so the
	// caller can script placements with PlaceObject (session-style use).
	StartEmpty bool
}

// App is a running MAR-app simulation that HBO can optimize.
type App struct {
	built *scenario.Built
	cfg   core.Config
	rng   *sim.RNG
}

// New builds an app for the named scenario: trains the virtual-object
// library, profiles the taskset offline, places all objects, and starts the
// AI tasks on their profiled best resources.
func New(opts Options) (*App, error) {
	spec, err := scenario.ByName(opts.Scenario)
	if err != nil {
		return nil, err
	}
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	cfg := core.DefaultConfig()
	if opts.Weight > 0 {
		cfg.Weight = opts.Weight
	}
	if opts.RMin > 0 {
		cfg.RMin = opts.RMin
	}
	if opts.InitSamples > 0 {
		cfg.InitSamples = opts.InitSamples
	}
	if opts.Iterations > 0 {
		cfg.Iterations = opts.Iterations
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec.StartEmpty = opts.StartEmpty
	built, err := spec.Build(opts.Seed)
	if err != nil {
		return nil, err
	}
	return &App{built: built, cfg: cfg, rng: sim.NewRNG(opts.Seed)}, nil
}

// Scenarios lists the available scenario names.
func Scenarios() []string {
	var out []string
	for _, s := range scenario.All() {
		out = append(out, s.Name)
	}
	return out
}

// Solution is the configuration an HBO activation converged to.
type Solution struct {
	// Allocation maps task ID to resource name ("CPU", "GPU", "NNAPI").
	Allocation map[string]string
	// TriangleRatio is the chosen total triangle count ratio x.
	TriangleRatio float64
	// Quality, Epsilon and Reward are the winning configuration's measured
	// average object quality (Eq. 2), normalized AI latency (Eq. 4), and
	// reward B = Q − w·ε (Eq. 3).
	Quality float64
	Epsilon float64
	Reward  float64
	// BestCostTrajectory is the running-minimum cost after each iteration.
	BestCostTrajectory []float64
	// Iterations is the number of configurations explored.
	Iterations int
}

// Optimize runs one HBO activation (Algorithm 1 over the configured budget)
// and leaves the app running the best configuration found.
func (a *App) Optimize() (Solution, error) {
	res, err := core.RunActivation(a.built.Runtime, a.cfg, a.rng)
	if err != nil {
		return Solution{}, err
	}
	sol := Solution{
		Allocation:         make(map[string]string, len(res.Assignment)),
		TriangleRatio:      res.Ratio,
		Quality:            res.Quality,
		Epsilon:            res.Epsilon,
		Reward:             -res.Cost,
		BestCostTrajectory: res.BestCostTrajectory(),
		Iterations:         len(res.Iterations),
	}
	for id, r := range res.Assignment {
		sol.Allocation[id] = r.String()
	}
	return sol, nil
}

// Measure samples the app's current performance over windowMS of simulated
// time, returning average quality, normalized latency, and reward.
func (a *App) Measure(windowMS float64) (quality, epsilon, reward float64, err error) {
	m, err := a.built.Runtime.Measure(windowMS)
	if err != nil {
		return 0, 0, 0, err
	}
	return m.Quality, m.Epsilon, m.Reward(a.cfg.Weight), nil
}

// PlaceObject adds one more instance of a catalog object at the given
// distance (meters), e.g. to script a session.
func (a *App) PlaceObject(name string, instance int, distance float64) error {
	if _, err := a.built.Scene.Place(name, instance, distance); err != nil {
		return err
	}
	a.built.Runtime.SyncRenderLoad()
	return nil
}

// SetDistance moves the user relative to one object.
func (a *App) SetDistance(objectID string, distance float64) error {
	if distance <= 0 {
		return fmt.Errorf("hbo: non-positive distance %v", distance)
	}
	o, err := a.built.Scene.Object(objectID)
	if err != nil {
		return err
	}
	o.Distance = distance
	a.built.Runtime.SyncRenderLoad()
	return nil
}

// Objects returns the on-screen object IDs in lexical order.
func (a *App) Objects() []string {
	return a.built.Scene.SortedIDs()
}

// Tasks returns the AI task IDs in lexical order.
func (a *App) Tasks() []string {
	ids := a.built.Runtime.TaskIDs()
	sort.Strings(ids)
	return ids
}

// TriangleRatio returns the scene's current total triangle ratio.
func (a *App) TriangleRatio() float64 {
	return a.built.Scene.TotalRatio()
}

// Now returns the app's simulated clock in milliseconds.
func (a *App) Now() float64 {
	return a.built.System.Now()
}

// Experiments lists the paper artifacts this repository can regenerate.
func Experiments() []string {
	var out []string
	for _, r := range experiments.All() {
		out = append(out, r.ID)
	}
	return out
}

// RunExperiment regenerates one paper artifact ("Table I", "Figure 6", ...)
// and returns its printable report.
func RunExperiment(id string, seed uint64) (string, error) {
	r, err := experiments.ByID(id)
	if err != nil {
		return "", err
	}
	out, err := r.Run(seed)
	if err != nil {
		return "", err
	}
	return out.String(), nil
}
