GO ?= go

.PHONY: all vet lint allocgate tidy-check build test race bench fuzz cover cover-html check

all: check

vet:
	$(GO) vet ./...

# bin/hbovet is the project vettool: the eight custom analyzers (detlint,
# obslint, ctxlint, errlint, locklint, copylint, leaklint, codeclint — see
# internal/analysis/ and DESIGN.md §11/§16) compiled into a unitchecker
# binary that `go vet -vettool` drives. The binary is cached under bin/ and
# only rebuilt when analyzer (or vendored x/tools) sources change.
HBOVET := bin/hbovet
HBOVET_SRCS := $(shell find cmd/hbovet internal/analysis third_party -name '*.go' -not -path '*/testdata/*') go.mod

$(HBOVET): $(HBOVET_SRCS)
	@mkdir -p bin
	$(GO) build -o $(HBOVET) ./cmd/hbovet

# lint runs the standard vet suite plus the custom analyzers over the whole
# module, then enforces the suppression budget: the number of
# `//lint:allow <analyzer> <reason>` comments must equal the count
# committed in lint.budget, so adding (or removing) a suppression forces a
# visible lint.budget change in the same diff. Test files are excluded —
# most analyzers exempt them anyway, and lintutil's own parser tests embed
# directive strings as fixtures.
LINT_NAMES := detlint|obslint|ctxlint|errlint|locklint|copylint|leaklint|codeclint
lint: $(HBOVET)
	$(GO) vet ./...
	$(GO) vet -vettool=$(abspath $(HBOVET)) ./...
	@n=$$(grep -rnE --include='*.go' --exclude='*_test.go' '(^|[[:space:]])//lint:allow ($(LINT_NAMES)) ' . 2>/dev/null | grep -v testdata | grep -v third_party | wc -l); \
	budget=$$(cat lint.budget); \
	if [ "$$n" -ne "$$budget" ]; then \
		echo "lint: $$n suppression(s) in tree but lint.budget says $$budget — update lint.budget in the same change (and justify it in the PR)"; \
		exit 1; \
	fi; \
	echo "lint: clean ($$n suppression(s), within budget; grep -rn 'lint:allow' for the list)"

# allocgate recompiles the //hbo:noalloc packages with escape diagnostics
# and fails on any heap escape in an annotated hot-path function.
allocgate:
	$(GO) run ./cmd/allocgate

# tidy-check fails if go.mod/go.sum drift from what `go mod tidy` would
# write — CI runs it so the x/tools pin cannot rot silently.
tidy-check:
	$(GO) mod tidy -diff

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every benchmark with allocation stats and also records a
# machine-readable snapshot (BENCH_<date>.json) via cmd/benchjson, so perf
# regressions are diffable across commits.
bench:
	$(GO) test -bench=. -benchmem ./... | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_$$(date +%F).json

# fuzz gives each native fuzz target a time-boxed run (override with
# FUZZTIME=2m etc.). Checked-in seed corpora live under testdata/fuzz/; any
# crasher Go minimizes is written there too, so it reproduces in plain
# `go test` forever after.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzOBJParse -fuzztime=$(FUZZTIME) ./internal/mesh/
	$(GO) test -run=^$$ -fuzz=FuzzEdgeRequestDecode -fuzztime=$(FUZZTIME) ./internal/edge/
	$(GO) test -run=^$$ -fuzz=FuzzSnapshotDecode -fuzztime=$(FUZZTIME) ./internal/edge/sessiond/
	$(GO) test -run=^$$ -fuzz=FuzzFrameDecode -fuzztime=$(FUZZTIME) ./internal/edge/sessiond/wire/

# cover runs the full suite with coverage and prints the per-function
# summary; the HTML report lands in cover.html. It then enforces a coverage
# floor over the determinism- and serving-critical packages
# (internal/edge/... including sessiond and the contend model,
# internal/core, the optimizer stack internal/bo/... with the policy
# registry, internal/experiments/... with the arena, and internal/loadgen
# with the mobility/link model) so the regression battery cannot silently
# rot; raise the floor as coverage grows, never lower it casually.
COVER_FLOOR ?= 81.3
COVER_PKGS := ./internal/edge/... ./internal/core ./internal/bo/... ./internal/experiments/... ./internal/loadgen
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -5
	$(GO) tool cover -html=cover.out -o cover.html
	$(GO) test -coverprofile=cover.edge.out $(COVER_PKGS)
	@total=$$($(GO) tool cover -func=cover.edge.out | tail -1 | awk '{sub(/%/,"",$$NF); print $$NF}'); \
	echo "cover: $(COVER_PKGS) at $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t=$$total -v f=$(COVER_FLOOR) 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "cover: coverage $$total% fell below the $(COVER_FLOOR)% floor"; exit 1; }

# cover-html regenerates only the browsable report (cover.html is
# .gitignore'd; this is the quick local loop, without the floor check).
cover-html:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -html=cover.out -o cover.html
	@echo "cover-html: wrote cover.html"

# check is the pre-commit gate: standard vet, the custom analyzer suite,
# the zero-alloc gate, full build, and the test suite (race is the slower
# CI-side superset).
check: vet lint allocgate build test
