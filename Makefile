GO ?= go

.PHONY: all vet build test race bench check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# check is the pre-commit gate: static analysis, full build, and the test
# suite under the race detector.
check: vet build race
