GO ?= go

.PHONY: all vet build test race bench fuzz cover check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every benchmark with allocation stats and also records a
# machine-readable snapshot (BENCH_<date>.json) via cmd/benchjson, so perf
# regressions are diffable across commits.
bench:
	$(GO) test -bench=. -benchmem ./... | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_$$(date +%F).json

# fuzz gives each native fuzz target a time-boxed run (override with
# FUZZTIME=2m etc.). Checked-in seed corpora live under testdata/fuzz/; any
# crasher Go minimizes is written there too, so it reproduces in plain
# `go test` forever after.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzOBJParse -fuzztime=$(FUZZTIME) ./internal/mesh/
	$(GO) test -run=^$$ -fuzz=FuzzEdgeRequestDecode -fuzztime=$(FUZZTIME) ./internal/edge/

# cover runs the full suite with coverage and prints the per-function
# summary; the HTML report lands in cover.html.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -5
	$(GO) tool cover -html=cover.out -o cover.html

# check is the pre-commit gate: static analysis, full build, and the test
# suite under the race detector.
check: vet build race
