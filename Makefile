GO ?= go

.PHONY: all vet build test race bench check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every benchmark with allocation stats and also records a
# machine-readable snapshot (BENCH_<date>.json) via cmd/benchjson, so perf
# regressions are diffable across commits.
bench:
	$(GO) test -bench=. -benchmem ./... | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_$$(date +%F).json

# check is the pre-commit gate: static analysis, full build, and the test
# suite under the race detector.
check: vet build race
