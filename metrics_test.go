package hbo_test

import (
	"bytes"
	"math"
	"testing"

	hbo "github.com/mar-hbo/hbo"
)

func TestMeasureMetricsFields(t *testing.T) {
	app, err := hbo.New(hbo.Options{Scenario: "SC1-CF1", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m, err := app.MeasureMetrics(3000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Quality <= 0 || m.Quality > 1 {
		t.Errorf("quality %v", m.Quality)
	}
	if m.AveragePowerW < 1 || m.AveragePowerW > 15 {
		t.Errorf("power %v implausible", m.AveragePowerW)
	}
	if m.FPS <= 0 || m.FPS > 60 {
		t.Errorf("fps %v", m.FPS)
	}
	if m.TemperatureC != 0 {
		t.Errorf("temperature %v with thermal disabled", m.TemperatureC)
	}
	if len(m.PerTaskLatencyMS) != 6 {
		t.Errorf("per-task latencies %d", len(m.PerTaskLatencyMS))
	}
	if math.Abs(m.TriangleRatio-1) > 1e-9 {
		t.Errorf("fresh scene ratio %v", m.TriangleRatio)
	}
	if math.Abs(m.Reward-(m.Quality-2.5*m.Epsilon)) > 1e-9 {
		t.Errorf("reward %v inconsistent with Q=%v eps=%v", m.Reward, m.Quality, m.Epsilon)
	}
}

func TestEnableThermalHeatsUnderLoad(t *testing.T) {
	app, err := hbo.New(hbo.Options{Scenario: "SC1-CF1", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	app.EnableThermal()
	m, err := app.MeasureMetrics(120000)
	if err != nil {
		t.Fatal(err)
	}
	if m.TemperatureC <= 30 {
		t.Errorf("die temperature %v after two loaded minutes, want above ambient", m.TemperatureC)
	}
}

func TestSetAllocationAndRatio(t *testing.T) {
	app, err := hbo.New(hbo.Options{Scenario: "SC2-CF2", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.SetAllocation("mnist", "CPU"); err != nil {
		t.Fatal(err)
	}
	if err := app.SetAllocation("mnist", "TPU"); err == nil {
		t.Fatal("bogus resource accepted")
	}
	if err := app.SetAllocation("ghost", "CPU"); err == nil {
		t.Fatal("unknown task accepted")
	}
	if err := app.SetTriangleRatio(0.5); err != nil {
		t.Fatal(err)
	}
	if got := app.TriangleRatio(); math.Abs(got-0.5) > 0.03 {
		t.Fatalf("ratio %v after SetTriangleRatio(0.5)", got)
	}
	if err := app.SetTriangleRatio(1.5); err == nil {
		t.Fatal("ratio > 1 accepted")
	}
}

func TestSessionAPI(t *testing.T) {
	app, err := hbo.New(hbo.Options{Scenario: "SC2-CF2", Seed: 9, InitSamples: 2, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := app.StartSession(hbo.SessionOptions{UseLookup: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(20000); err != nil {
		t.Fatal(err)
	}
	if s.Activations() == 0 {
		t.Fatal("session never activated")
	}
	if len(s.Rewards()) == 0 {
		t.Fatal("no reward samples")
	}
	// Periodic mode needs an interval.
	if _, err := app.StartSession(hbo.SessionOptions{Periodic: true}); err == nil {
		t.Fatal("periodic session without interval accepted")
	}
}

func TestSetInView(t *testing.T) {
	app, err := hbo.New(hbo.Options{Scenario: "SC1-CF1", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	before, err := app.MeasureMetrics(2000)
	if err != nil {
		t.Fatal(err)
	}
	// Turn away from the heavy objects: AI latency should relax.
	for _, id := range []string{"bike", "splane", "plane", "plane_2", "plane_3", "plane_4"} {
		if err := app.SetInView(id, false); err != nil {
			t.Fatal(err)
		}
	}
	after, err := app.MeasureMetrics(3000)
	if err != nil {
		t.Fatal(err)
	}
	if after.Epsilon >= before.Epsilon {
		t.Errorf("hiding heavy objects did not relax latency: %.3f -> %.3f", before.Epsilon, after.Epsilon)
	}
	if err := app.SetInView("ghost", false); err == nil {
		t.Fatal("unknown object accepted")
	}
}

func TestLookupPersistenceAcrossSessions(t *testing.T) {
	run := func(lookupJSON *bytes.Buffer) (*hbo.Session, *bytes.Buffer) {
		app, err := hbo.New(hbo.Options{Scenario: "SC2-CF2", Seed: 31, InitSamples: 2, Iterations: 3})
		if err != nil {
			t.Fatal(err)
		}
		opts := hbo.SessionOptions{UseLookup: true}
		if lookupJSON != nil {
			opts.LookupFrom = bytes.NewReader(lookupJSON.Bytes())
		}
		s, err := app.StartSession(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RunFor(12000); err != nil {
			t.Fatal(err)
		}
		var saved bytes.Buffer
		if err := s.SaveLookup(&saved); err != nil {
			t.Fatal(err)
		}
		return s, &saved
	}

	first, saved := run(nil)
	if first.LookupReplays() != 0 {
		t.Fatalf("fresh session replayed %d times", first.LookupReplays())
	}
	if first.ExplorationTimeMS() <= 0 {
		t.Fatal("no exploration time recorded")
	}
	// A second app run (same environment) seeded with the saved table
	// replays instead of exploring and spends far less time in activations.
	second, _ := run(saved)
	if second.LookupReplays() == 0 {
		t.Fatal("seeded session never replayed from the lookup table")
	}
	if second.ExplorationTimeMS() >= first.ExplorationTimeMS() {
		t.Fatalf("seeded session explored as long as the fresh one: %.0f vs %.0f ms",
			second.ExplorationTimeMS(), first.ExplorationTimeMS())
	}
}
