// Classroom: the paper's §VI motivating deployment — an AR-enabled lesson
// where a teacher places exhibit objects one at a time while students dwell
// on each for a while. The app runs a monitored HBO session with the
// event-based activation policy and the lookup-table extension: when the
// lesson returns to a previously seen scene configuration, the remembered
// solution is replayed instead of re-exploring.
package main

import (
	"fmt"
	"os"

	hbo "github.com/mar-hbo/hbo"
)

// lessonStep is one teaching beat: place an exhibit, then dwell.
type lessonStep struct {
	object   string
	instance int
	distance float64
	dwellMS  float64
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "classroom: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// SC2 assets are the exhibit models; start with an empty classroom.
	app, err := hbo.New(hbo.Options{
		Scenario:   "SC2-CF1", // six AI tasks observe the class
		Seed:       7,
		StartEmpty: true,
	})
	if err != nil {
		return err
	}
	session, err := app.StartSession(hbo.SessionOptions{UseLookup: true})
	if err != nil {
		return err
	}

	lesson := []lessonStep{
		{object: "cabin", instance: 1, distance: 2.0, dwellMS: 30000},
		{object: "andy", instance: 1, distance: 1.2, dwellMS: 30000},
		{object: "ATV", instance: 1, distance: 1.5, dwellMS: 30000},
		{object: "hammer", instance: 1, distance: 1.0, dwellMS: 30000},
	}
	for i, step := range lesson {
		if err := app.PlaceObject(step.object, step.instance, step.distance); err != nil {
			return err
		}
		if err := session.RunFor(step.dwellMS); err != nil {
			return err
		}
		fmt.Printf("exhibit %d (%s): %d activations so far, ratio %.2f\n",
			i+1, step.object, session.Activations(), app.TriangleRatio())
	}

	// The lesson loops back to an earlier arrangement: hammer leaves, a
	// second andy arrives — then the original single-andy scene recurs.
	if err := app.PlaceObject("andy", 2, 1.2); err != nil {
		return err
	}
	if err := session.RunFor(30000); err != nil {
		return err
	}

	fmt.Printf("\nlesson done after %.0fs of class time\n", app.Now()/1000)
	fmt.Printf("activations: %d (of which %d replayed from the lookup table)\n",
		session.Activations(), session.LookupReplays())
	q, e, b, err := app.Measure(3000)
	if err != nil {
		return err
	}
	fmt.Printf("final state: quality=%.3f latency=%.3f reward=%.3f\n", q, e, b)
	return nil
}
