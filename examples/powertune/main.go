// Powertune: the energy/thermal extension through the public API. The same
// SC1-CF1 workload runs twice for five simulated minutes on a passively
// cooled phone (thermal model on): once under Android's default all-NNAPI
// policy at full quality, once under HBO's jointly optimized configuration.
// The comparison shows the second-order payoff of HBO's load shedding: less
// platform power, a held frame rate, and a die that stays out of the
// throttling region.
package main

import (
	"fmt"
	"os"

	hbo "github.com/mar-hbo/hbo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "powertune: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("policy          minute  power(W)  fps  die(C)  latency(eps)")

	// Android default: everything on NNAPI, full triangles.
	if err := runPolicy("all-NNAPI", func(app *hbo.App) error {
		for _, id := range app.Tasks() {
			if err := app.SetAllocation(id, "NNAPI"); err != nil {
				return err
			}
		}
		return app.SetTriangleRatio(1)
	}); err != nil {
		return err
	}

	// HBO: one activation decides allocation and triangle budget jointly.
	if err := runPolicy("HBO", func(app *hbo.App) error {
		_, err := app.Optimize()
		return err
	}); err != nil {
		return err
	}
	return nil
}

func runPolicy(name string, configure func(*hbo.App) error) error {
	app, err := hbo.New(hbo.Options{Scenario: "SC1-CF1", Seed: 42})
	if err != nil {
		return err
	}
	app.EnableThermal()
	if err := configure(app); err != nil {
		return err
	}
	for minute := 1; minute <= 5; minute++ {
		m, err := app.MeasureMetrics(60000)
		if err != nil {
			return err
		}
		fmt.Printf("%-15s %6d  %8.2f  %3.0f  %6.1f  %12.2f\n",
			name, minute, m.AveragePowerW, m.FPS, m.TemperatureC, m.Epsilon)
	}
	fmt.Println()
	return nil
}
