// Quickstart: build the paper's most contended scenario (SC1-CF1: nine
// high-triangle-count virtual objects, six concurrent AI tasks on a
// simulated Pixel 7), measure the unoptimized app, run one HBO activation,
// and print the jointly optimized configuration.
package main

import (
	"fmt"
	"os"

	hbo "github.com/mar-hbo/hbo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	app, err := hbo.New(hbo.Options{Scenario: "SC1-CF1", Seed: 42})
	if err != nil {
		return err
	}

	quality, epsilon, reward, err := app.Measure(4000)
	if err != nil {
		return err
	}
	fmt.Printf("before HBO: quality=%.3f  normalized latency=%.3f  reward=%.3f\n",
		quality, epsilon, reward)

	sol, err := app.Optimize()
	if err != nil {
		return err
	}
	fmt.Printf("\nafter %d Bayesian iterations HBO chose:\n", sol.Iterations)
	for _, id := range app.Tasks() {
		fmt.Printf("  %-22s -> %s\n", id, sol.Allocation[id])
	}
	fmt.Printf("  total triangle ratio  -> %.2f\n", sol.TriangleRatio)
	fmt.Printf("\nafter HBO: quality=%.3f  normalized latency=%.3f  reward=%.3f\n",
		sol.Quality, sol.Epsilon, sol.Reward)
	return nil
}
