// Edgeoffload: the distributed path of the paper's Figure 3 and §VI. A
// local edge server runs the virtual-object decimation algorithm, the Eq. 1
// parameter training, and — per §VI's overhead discussion — the Bayesian
// optimization step itself; the MAR client downloads decimated meshes
// through an LRU cache and drives a remote BO loop whose per-iteration
// payload is a few dozen bytes.
//
// This example exercises the wire protocol end to end on a loopback
// listener — including what happens when the link misbehaves: a fault
// injector degrades the connection mid-run, the client rides it out with
// retries, and a sustained outage trips the circuit breaker, which re-closes
// once the link heals. Run cmd/hboedge for a standalone server.
package main

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/mar-hbo/hbo/internal/edge"
	"github.com/mar-hbo/hbo/internal/faults"
	"github.com/mar-hbo/hbo/internal/quality"
	"github.com/mar-hbo/hbo/internal/render"
	"github.com/mar-hbo/hbo/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "edgeoffload: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// Start the edge server on a loopback port.
	specs := make([]render.ObjectSpec, 0)
	for _, c := range render.SC1() {
		specs = append(specs, c.Spec)
	}
	srv, err := edge.NewServer(specs)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	defer func() {
		_ = httpSrv.Close()
		<-serveErr // wait for the serve goroutine to exit
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("edge server on %s\n\n", base)

	// All client traffic flows through a fault injector — clean for the
	// first three sections, then degraded in section 4.
	inj := faults.NewTransport(nil, 11, faults.Plan{})
	cfg := edge.DefaultClientConfig()
	cfg.Transport = inj
	cfg.BackoffBase = 2 * time.Millisecond
	cfg.BackoffMax = 10 * time.Millisecond
	cfg.BreakerFailureThreshold = 3
	cfg.BreakerSuccessThreshold = 1
	cfg.BreakerOpenFor = 50 * time.Millisecond
	client, err := edge.NewClientWithConfig(base, 16, cfg)
	if err != nil {
		return err
	}

	// 1. Decimated-mesh downloads with the local cache.
	for _, ratio := range []float64{0.7, 0.4, 0.7, 0.4, 0.2} {
		m, err := client.Decimate("apricot", ratio)
		if err != nil {
			return err
		}
		fmt.Printf("decimate apricot to %.0f%%: %5d triangles\n", ratio*100, m.TriangleCount())
	}
	hits, misses := client.CacheStats()
	fmt.Printf("local decimation cache: %d hits, %d misses\n\n", hits, misses)

	// 2. Server-side Eq. 1 parameter training from quality-assessment
	// samples measured on-device.
	truth := quality.Truth{Severity: 0.65, Gamma: 1.5, DistExp: 1.1}
	rng := sim.NewRNG(5)
	samples := quality.CollectSamples(truth,
		[]float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0}, []float64{0.5, 1, 2, 4}, rng, 0.04)
	params, err := client.Train("apricot", samples)
	if err != nil {
		return err
	}
	fmt.Printf("trained Eq.1 params: a=%.3f b=%.3f c=%.3f d=%.3f\n", params.A, params.B, params.C, params.D)
	fmt.Printf("predicted error at R=0.5, D=1.5m: %.3f\n\n", params.Error(0.5, 1.5))

	// 3. Remote Bayesian optimization: the device only uploads (point,
	// cost) observations and downloads the next configuration to test.
	// Here the black box is a synthetic stand-in for the measured cost.
	cost := func(p []float64) float64 {
		dx := p[3] - 0.72
		return (1-p[2])*0.8 + 3*dx*dx
	}
	var obs []edge.Observation
	rng2 := sim.NewRNG(9)
	for i := 0; i < 5; i++ { // initial random exploration happens on-device
		p := []float64{0, 0, 0, 0}
		rng2.Dirichlet(1, p[:3])
		p[3] = 0.1 + 0.9*rng2.Float64()
		obs = append(obs, edge.Observation{Point: p, Cost: cost(p)})
	}
	best := obs[0]
	for iter := 0; iter < 10; iter++ {
		point, err := client.BONext(3, 0.1, 42, obs)
		if err != nil {
			return err
		}
		o := edge.Observation{Point: point, Cost: cost(point)}
		obs = append(obs, o)
		if o.Cost < best.Cost {
			best = o
		}
	}
	fmt.Printf("remote BO after %d iterations: best cost %.3f at ratio %.2f (target 0.72)\n\n",
		len(obs), best.Cost, best.Point[3])

	// 4. Fault tolerance. First a lossy-but-alive link: half the requests
	// drop, and the client's retry/backoff loop absorbs them.
	inj.SetPlan(faults.Plan{DropRate: 0.5})
	for _, ratio := range []float64{0.35, 0.55, 0.85} {
		if _, err := client.Decimate("apricot", ratio); err != nil {
			return fmt.Errorf("lossy link: %w", err)
		}
	}
	fmt.Printf("lossy link (50%% drops): 3 downloads OK after %d retries\n", client.Retries())

	// Then a hard outage: every request 503s. After three consecutive
	// failures the breaker opens and further calls fail fast without
	// touching the network.
	inj.SetPlan(faults.Plan{ServerErrorRate: 1})
	for i := 0; i < 4; i++ {
		// Fresh ratios each call, so the LRU cache cannot answer locally.
		_, err := client.Decimate("apricot", 0.25+float64(i)*0.02)
		st := client.BreakerStats()
		switch {
		case errors.Is(err, edge.ErrUnavailable):
			fmt.Printf("outage call %d: fast-fail, breaker %s (%d short-circuits)\n", i+1, st.State, st.ShortCircuits)
		case err != nil:
			fmt.Printf("outage call %d: %v (breaker %s)\n", i+1, err, st.State)
		default:
			fmt.Printf("outage call %d: unexpectedly succeeded\n", i+1)
		}
	}

	// Link heals: once the open window lapses, a half-open probe succeeds
	// and the breaker re-closes — the edge is re-adopted transparently.
	inj.SetPlan(faults.Plan{})
	time.Sleep(cfg.BreakerOpenFor + 10*time.Millisecond)
	m, err := client.Decimate("apricot", 0.6)
	if err != nil {
		return fmt.Errorf("post-recovery download: %w", err)
	}
	st := client.BreakerStats()
	fmt.Printf("link healed: %d triangles downloaded, breaker %s after %d opens\n",
		m.TriangleCount(), st.State, st.Opens)
	fs := inj.Stats()
	fmt.Printf("injector totals: %d requests (%d passed, %d dropped, %d synthesized 5xx)\n",
		fs.Requests, fs.Passed, fs.Drops, fs.Synth5xx)
	return nil
}
