// Edgeoffload: the distributed path of the paper's Figure 3 and §VI. A
// local edge server runs the virtual-object decimation algorithm, the Eq. 1
// parameter training, and — per §VI's overhead discussion — the Bayesian
// optimization step itself; the MAR client downloads decimated meshes
// through an LRU cache and drives a remote BO loop whose per-iteration
// payload is a few dozen bytes.
//
// This example exercises the wire protocol end to end on a loopback
// listener; run cmd/hboedge for a standalone server.
package main

import (
	"fmt"
	"net"
	"net/http"
	"os"

	"github.com/mar-hbo/hbo/internal/edge"
	"github.com/mar-hbo/hbo/internal/quality"
	"github.com/mar-hbo/hbo/internal/render"
	"github.com/mar-hbo/hbo/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "edgeoffload: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// Start the edge server on a loopback port.
	specs := make([]render.ObjectSpec, 0)
	for _, c := range render.SC1() {
		specs = append(specs, c.Spec)
	}
	srv, err := edge.NewServer(specs)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	defer func() {
		_ = httpSrv.Close()
		<-serveErr // wait for the serve goroutine to exit
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("edge server on %s\n\n", base)

	client, err := edge.NewClient(base, 16)
	if err != nil {
		return err
	}

	// 1. Decimated-mesh downloads with the local cache.
	for _, ratio := range []float64{0.7, 0.4, 0.7, 0.4, 0.2} {
		m, err := client.Decimate("apricot", ratio)
		if err != nil {
			return err
		}
		fmt.Printf("decimate apricot to %.0f%%: %5d triangles\n", ratio*100, m.TriangleCount())
	}
	hits, misses := client.CacheStats()
	fmt.Printf("local decimation cache: %d hits, %d misses\n\n", hits, misses)

	// 2. Server-side Eq. 1 parameter training from quality-assessment
	// samples measured on-device.
	truth := quality.Truth{Severity: 0.65, Gamma: 1.5, DistExp: 1.1}
	rng := sim.NewRNG(5)
	samples := quality.CollectSamples(truth,
		[]float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0}, []float64{0.5, 1, 2, 4}, rng, 0.04)
	params, err := client.Train("apricot", samples)
	if err != nil {
		return err
	}
	fmt.Printf("trained Eq.1 params: a=%.3f b=%.3f c=%.3f d=%.3f\n", params.A, params.B, params.C, params.D)
	fmt.Printf("predicted error at R=0.5, D=1.5m: %.3f\n\n", params.Error(0.5, 1.5))

	// 3. Remote Bayesian optimization: the device only uploads (point,
	// cost) observations and downloads the next configuration to test.
	// Here the black box is a synthetic stand-in for the measured cost.
	cost := func(p []float64) float64 {
		dx := p[3] - 0.72
		return (1-p[2])*0.8 + 3*dx*dx
	}
	var obs []edge.Observation
	rng2 := sim.NewRNG(9)
	for i := 0; i < 5; i++ { // initial random exploration happens on-device
		p := []float64{0, 0, 0, 0}
		rng2.Dirichlet(1, p[:3])
		p[3] = 0.1 + 0.9*rng2.Float64()
		obs = append(obs, edge.Observation{Point: p, Cost: cost(p)})
	}
	best := obs[0]
	for iter := 0; iter < 10; iter++ {
		point, err := client.BONext(3, 0.1, 42, obs)
		if err != nil {
			return err
		}
		o := edge.Observation{Point: point, Cost: cost(point)}
		obs = append(obs, o)
		if o.Cost < best.Cost {
			best = o
		}
	}
	fmt.Printf("remote BO after %d iterations: best cost %.3f at ratio %.2f (target 0.72)\n",
		len(obs), best.Cost, best.Point[3])
	return nil
}
