// Artgallery: a user wanders a two-room AR gallery. Each room holds a
// different set of exhibits; as the visitor moves between rooms, the
// out-of-room exhibits leave the camera frustum (no render load, no
// perceived quality) and the in-room ones come close. The monitored session
// re-optimizes when a room change shifts the reward and — because the rooms
// recur — the lookup-table extension replays remembered solutions on the
// second lap instead of re-exploring.
package main

import (
	"fmt"
	"os"

	hbo "github.com/mar-hbo/hbo"
)

// room is a set of object IDs plus the viewing distance inside the room.
type room struct {
	name     string
	objects  []string
	distance float64
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "artgallery: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	app, err := hbo.New(hbo.Options{Scenario: "SC1-CF1", Seed: 11})
	if err != nil {
		return err
	}
	session, err := app.StartSession(hbo.SessionOptions{UseLookup: true})
	if err != nil {
		return err
	}

	rooms := []room{
		{name: "sculpture hall", objects: []string{"apricot", "bike", "Cocacola", "Cocacola_2"}, distance: 1.2},
		{name: "aviation wing", objects: []string{"plane", "plane_2", "plane_3", "plane_4", "splane"}, distance: 1.8},
	}
	inRoom := func(r room) error {
		members := map[string]bool{}
		for _, id := range r.objects {
			members[id] = true
		}
		for _, id := range app.Objects() {
			if err := app.SetInView(id, members[id]); err != nil {
				return err
			}
			if members[id] {
				if err := app.SetDistance(id, r.distance); err != nil {
					return err
				}
			}
		}
		return nil
	}

	// Two laps through the gallery, a minute per room.
	for lap := 1; lap <= 2; lap++ {
		for _, r := range rooms {
			if err := inRoom(r); err != nil {
				return err
			}
			if err := session.RunFor(60000); err != nil {
				return err
			}
			m, err := app.MeasureMetrics(2000)
			if err != nil {
				return err
			}
			fmt.Printf("lap %d, %-14s: reward %6.2f  ratio %.2f  fps %2.0f  activations so far %d (replays %d)\n",
				lap, r.name, m.Reward, m.TriangleRatio, m.FPS, session.Activations(), session.LookupReplays())
		}
	}

	fmt.Printf("\ntour complete: %d activations, %d served from the lookup table\n",
		session.Activations(), session.LookupReplays())
	return nil
}
