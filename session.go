package hbo

import (
	"fmt"
	"io"

	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/state"
)

// SessionOptions configures a monitored app session.
type SessionOptions struct {
	// Periodic switches from the paper's event-based activation policy to
	// fixed-interval re-optimization (the Fig. 8b strawman).
	Periodic bool
	// PeriodicIntervalMS is the re-optimization interval in Periodic mode.
	PeriodicIntervalMS float64
	// UseLookup enables the §VI lookup-table extension: solutions found for
	// an environment are replayed when the environment recurs, skipping a
	// full Bayesian exploration.
	UseLookup bool
	// LookupFrom seeds the lookup table from a previously saved JSON stream
	// (see Session.SaveLookup); implies UseLookup.
	LookupFrom io.Reader
}

// RewardPoint is one monitored reward sample.
type RewardPoint struct {
	// TimeMS is the virtual timestamp.
	TimeMS float64
	// Reward is B = Q − w·ε at that time.
	Reward float64
	// InActivation marks samples taken while Bayesian iterations were
	// exploring.
	InActivation bool
}

// Session drives the app over virtual time with automatic HBO activations:
// the reward is sampled periodically and the activation policy decides when
// to re-optimize, while the caller mutates the scene between RunFor calls.
type Session struct {
	app   *App
	inner *core.Session
}

// StartSession begins monitoring the app. The app's Optimize method must not
// be called while a session is active (the session owns activations).
func (a *App) StartSession(opts SessionOptions) (*Session, error) {
	cfg := core.SessionConfig{
		HBO:       a.cfg,
		Mode:      core.EventBased,
		UseLookup: opts.UseLookup,
	}
	if opts.LookupFrom != nil {
		tab, err := state.LoadLookup(opts.LookupFrom)
		if err != nil {
			return nil, err
		}
		cfg.UseLookup = true
		cfg.InitialLookup = tab
	}
	if opts.Periodic {
		cfg.Mode = core.Periodic
		cfg.PeriodicIntervalMS = opts.PeriodicIntervalMS
	}
	inner, err := core.NewSession(a.built.Runtime, cfg, a.rng.Split())
	if err != nil {
		return nil, err
	}
	return &Session{app: a, inner: inner}, nil
}

// RunFor advances the session by durationMS of simulated time, activating
// HBO whenever the policy calls for it.
func (s *Session) RunFor(durationMS float64) error {
	return s.inner.RunFor(durationMS)
}

// Activations returns how many times the session re-optimized.
func (s *Session) Activations() int {
	return len(s.inner.Activations())
}

// LookupReplays returns how many activations were served from the lookup
// table instead of running Bayesian iterations.
func (s *Session) LookupReplays() int {
	n := 0
	for _, a := range s.inner.Activations() {
		if a.FromLookup {
			n++
		}
	}
	return n
}

// ExplorationTimeMS returns the total simulated time spent inside
// activations (the user-visible exploration cost).
func (s *Session) ExplorationTimeMS() float64 {
	return s.inner.ExplorationTimeMS()
}

// SaveLookup persists the session's lookup table as JSON for reuse in a
// later session via SessionOptions.LookupFrom.
func (s *Session) SaveLookup(w io.Writer) error {
	tab := s.inner.Lookup()
	if tab == nil {
		return fmt.Errorf("hbo: session has no lookup table (enable UseLookup)")
	}
	return state.SaveLookup(w, tab)
}

// Rewards returns the recorded reward samples.
func (s *Session) Rewards() []RewardPoint {
	samples := s.inner.Samples()
	out := make([]RewardPoint, len(samples))
	for i, smp := range samples {
		out[i] = RewardPoint{TimeMS: smp.TimeMS, Reward: smp.Reward, InActivation: smp.InActivation}
	}
	return out
}

// TimelineEvent is one entry of ObservedTimeline: a reward sample, an
// activation boundary, or a degraded-mode edge, in virtual-time order.
type TimelineEvent struct {
	// TimeMS is the virtual timestamp.
	TimeMS float64 `json:"t_ms"`
	// Kind is one of "sample", "activation.start", "activation.end",
	// "degraded.enter", "degraded.exit".
	Kind string `json:"kind"`
	// Value carries the reward for samples and the enforced solution's
	// reward for activation ends.
	Value float64 `json:"value,omitempty"`
	// Detail annotates the event ("in_activation", "lookup").
	Detail string `json:"detail,omitempty"`
}

// ObservedTimeline merges the session's reward samples with its activation
// boundaries and degraded-mode transitions into one chronologically sorted
// trace — the session-level view the observability layer exposes without
// needing a metrics registry attached.
func (s *Session) ObservedTimeline() []TimelineEvent {
	events := s.inner.ObservedTimeline()
	out := make([]TimelineEvent, len(events))
	for i, ev := range events {
		out[i] = TimelineEvent{TimeMS: ev.TimeMS, Kind: ev.Kind, Value: ev.Value, Detail: ev.Detail}
	}
	return out
}
