package hbo_test

import (
	"bytes"
	"math"
	"sort"
	"testing"

	hbo "github.com/mar-hbo/hbo"
	"github.com/mar-hbo/hbo/internal/obs"
)

// optimizeFingerprint runs one full activation for the scenario and flattens
// everything the optimizer decided into raw float bits plus the allocation
// map, so two runs can be compared bit-for-bit.
func optimizeFingerprint(t *testing.T) ([]uint64, map[string]string) {
	t.Helper()
	app, err := hbo.New(hbo.Options{Scenario: "SC1-CF1", Seed: 17, InitSamples: 3, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := app.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	bits := []uint64{
		math.Float64bits(sol.TriangleRatio),
		math.Float64bits(sol.Quality),
		math.Float64bits(sol.Epsilon),
		math.Float64bits(sol.Reward),
	}
	for _, c := range sol.BestCostTrajectory {
		bits = append(bits, math.Float64bits(c))
	}
	return bits, sol.Allocation
}

// TestObservabilityDoesNotPerturbDeterminism is the tentpole's golden-output
// guarantee: attaching a live metrics registry to every layer must leave the
// simulation byte-identical. Metrics are pure observers — they never touch
// the RNG or feed wall-clock readings back into control flow.
func TestObservabilityDoesNotPerturbDeterminism(t *testing.T) {
	baseBits, baseAlloc := optimizeFingerprint(t)

	reg := obs.New()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)
	obsBits, obsAlloc := optimizeFingerprint(t)

	if len(baseBits) != len(obsBits) {
		t.Fatalf("fingerprint lengths differ: %d vs %d", len(baseBits), len(obsBits))
	}
	for i := range baseBits {
		if baseBits[i] != obsBits[i] {
			t.Fatalf("fingerprint word %d differs with observability on: %#x vs %#x",
				i, baseBits[i], obsBits[i])
		}
	}
	if len(baseAlloc) != len(obsAlloc) {
		t.Fatalf("allocation sizes differ: %d vs %d", len(baseAlloc), len(obsAlloc))
	}
	for id, r := range baseAlloc {
		if obsAlloc[id] != r {
			t.Fatalf("task %s allocated to %s without registry, %s with", id, r, obsAlloc[id])
		}
	}

	// The observed run must actually have fed the registry at every layer.
	snap := reg.Snapshot()
	for _, name := range []string{
		"core.activations",
		"core.windows_measured",
		"sim.events_fired",
		"soc.inferences_completed",
		"bo.suggestions",
	} {
		if snap.Counters[name] == 0 {
			t.Fatalf("counter %q never incremented during an observed activation (counters: %v)",
				name, snap.Counters)
		}
	}
	if snap.Histograms["bo.suggest_wall_ms"].Count == 0 {
		t.Fatal("bo.suggest_wall_ms histogram empty during an observed activation")
	}
	if len(snap.Events) == 0 {
		t.Fatal("event tap empty during an observed activation")
	}
}

// TestLookupRoundTripByteIdentical pins SaveLookup/LookupFrom as a lossless
// pair: two sessions seeded from the same saved table replay the same
// solutions (bit-identical reward traces) and save byte-identical tables.
func TestLookupRoundTripByteIdentical(t *testing.T) {
	run := func(lookupJSON []byte) ([]hbo.RewardPoint, []byte) {
		app, err := hbo.New(hbo.Options{Scenario: "SC2-CF2", Seed: 31, InitSamples: 2, Iterations: 3})
		if err != nil {
			t.Fatal(err)
		}
		opts := hbo.SessionOptions{UseLookup: true}
		if lookupJSON != nil {
			opts.LookupFrom = bytes.NewReader(lookupJSON)
		}
		s, err := app.StartSession(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RunFor(12000); err != nil {
			t.Fatal(err)
		}
		var saved bytes.Buffer
		if err := s.SaveLookup(&saved); err != nil {
			t.Fatal(err)
		}
		return s.Rewards(), saved.Bytes()
	}

	_, saved := run(nil)
	rewardsA, savedA := run(saved)
	rewardsB, savedB := run(saved)

	if !bytes.Equal(savedA, savedB) {
		t.Fatalf("re-saved lookup tables differ:\n%s\nvs\n%s", savedA, savedB)
	}
	if len(rewardsA) == 0 || len(rewardsA) != len(rewardsB) {
		t.Fatalf("reward trace lengths differ: %d vs %d", len(rewardsA), len(rewardsB))
	}
	for i := range rewardsA {
		a, b := rewardsA[i], rewardsB[i]
		if math.Float64bits(a.TimeMS) != math.Float64bits(b.TimeMS) ||
			math.Float64bits(a.Reward) != math.Float64bits(b.Reward) ||
			a.InActivation != b.InActivation {
			t.Fatalf("reward sample %d differs between seeded replays: %+v vs %+v", i, a, b)
		}
	}

	// A round trip through load+save must also reproduce the original table.
	if !bytes.Equal(saved, savedA) {
		// The seeded runs may append new environments; the original rows must
		// still be a prefix-compatible subset. Sorted-row serialization makes
		// the simplest correct check "identical when no new rows appeared" —
		// and over the same 12 s the environment set is the same, so demand
		// full byte identity here too.
		t.Fatalf("seeded session did not reproduce the saved table:\noriginal:\n%s\nre-saved:\n%s", saved, savedA)
	}
}

// TestObservedTimelineIsChronologicalAndComplete checks the session-level
// timeline: sorted by virtual time, one start/end pair per activation, and
// every reward sample present.
func TestObservedTimelineIsChronologicalAndComplete(t *testing.T) {
	app, err := hbo.New(hbo.Options{Scenario: "SC1-CF1", Seed: 7, InitSamples: 2, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := app.StartSession(hbo.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(10000); err != nil {
		t.Fatal(err)
	}

	tl := s.ObservedTimeline()
	if len(tl) == 0 {
		t.Fatal("empty timeline after a 10 s session")
	}
	if !sort.SliceIsSorted(tl, func(i, j int) bool { return tl[i].TimeMS < tl[j].TimeMS }) {
		t.Fatal("timeline is not sorted by TimeMS")
	}
	counts := map[string]int{}
	for _, ev := range tl {
		counts[ev.Kind]++
	}
	if got, want := counts["activation.start"], s.Activations(); got != want {
		t.Fatalf("%d activation.start events, want %d", got, want)
	}
	if got, want := counts["activation.end"], s.Activations(); got != want {
		t.Fatalf("%d activation.end events, want %d", got, want)
	}
	if got, want := counts["sample"], len(s.Rewards()); got != want {
		t.Fatalf("%d sample events, want %d", got, want)
	}
	if counts["degraded.enter"] != counts["degraded.exit"]+boolToInt(endsDegraded(tl)) {
		t.Fatalf("unbalanced degraded transitions: %d enter, %d exit",
			counts["degraded.enter"], counts["degraded.exit"])
	}
}

func endsDegraded(tl []hbo.TimelineEvent) bool {
	degraded := false
	for _, ev := range tl {
		switch ev.Kind {
		case "degraded.enter":
			degraded = true
		case "degraded.exit":
			degraded = false
		}
	}
	return degraded
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
