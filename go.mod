module github.com/mar-hbo/hbo

go 1.22
