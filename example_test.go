package hbo_test

import (
	"fmt"

	hbo "github.com/mar-hbo/hbo"
)

// ExampleNew shows the minimal workflow: build a paper scenario and run one
// HBO activation.
func ExampleNew() {
	app, err := hbo.New(hbo.Options{Scenario: "SC2-CF2", Seed: 42})
	if err != nil {
		fmt.Println(err)
		return
	}
	sol, err := app.Optimize()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("tasks allocated: %d\n", len(sol.Allocation))
	fmt.Printf("ratio in range: %v\n", sol.TriangleRatio > 0 && sol.TriangleRatio <= 1)
	// Output:
	// tasks allocated: 3
	// ratio in range: true
}

// ExampleScenarios lists the paper's evaluation scenarios.
func ExampleScenarios() {
	for _, s := range hbo.Scenarios() {
		fmt.Println(s)
	}
	// Output:
	// SC1-CF1
	// SC2-CF1
	// SC1-CF2
	// SC2-CF2
}

// ExampleApp_PlaceObject scripts a scene the way a session would.
func ExampleApp_PlaceObject() {
	app, err := hbo.New(hbo.Options{Scenario: "SC2-CF2", Seed: 1, StartEmpty: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := app.PlaceObject("cabin", 1, 1.5); err != nil {
		fmt.Println(err)
		return
	}
	if err := app.PlaceObject("hammer", 1, 2.0); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(app.Objects())
	// Output:
	// [cabin hammer]
}
